// Package obs is the repository's deterministic observability layer: a
// stdlib-only metrics registry (counters, gauges and fixed-bin
// histograms backed by stats.Sketch) plus lightweight span tracing for
// the onloading pipeline — the scheduler, the device proxy, the
// transfer drivers, the permit control plane, discovery and the fleet
// engine.
//
// Two properties distinguish it from an off-the-shelf metrics library:
//
//   - Determinism. The package never reads the wall clock (it is on the
//     3golvet SimPackages list): every duration observed into it comes
//     from an injected clock.Clock or a virtual simclock, and snapshots
//     are emitted in sorted (name, label-value) order. A simulation
//     that fills a registry is therefore as bit-reproducible as the
//     simulation itself.
//   - Exact merging. Registries built by the same registration function
//     merge shard-by-shard through Registry.Merge — counters and gauges
//     add, histograms fold their count vectors via stats.Sketch.Merge —
//     so the fleet engine's merge-reduce path (internal/fleet.Mergeable)
//     carries metrics with the same bit-identical-across-worker-counts
//     guarantee as its results.
//
// The registry is self-describing: every metric registers with a name,
// type, label names and help string, and cmd/3golobs renders METRICS.md
// from a fully-registered catalogue, so the reference cannot drift from
// the code (CI runs `3golobs gen-docs -check`).
//
// Registering the same name twice panics: metric names are a
// program-wide contract, and a silent second registration would fork
// the time series.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"threegol/internal/stats"
)

// Metric type names as they appear in descriptors, snapshots and docs.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Desc is a metric's self-description — everything the generated
// reference (METRICS.md) and the /debug/metrics endpoint expose about
// it besides its values.
type Desc struct {
	// Name is the registry-wide unique identifier, conventionally
	// "<subsystem>_<quantity>[_<unit>][_total]".
	Name string
	// Type is one of TypeCounter, TypeGauge, TypeHistogram.
	Type string
	// Help is the one-line human description rendered into METRICS.md.
	Help string
	// Labels are the label names; children are addressed by one value
	// per label.
	Labels []string
}

// Metric is one registered family: a descriptor plus its children (one
// per distinct label-value tuple; exactly one for label-less metrics).
type Metric interface {
	Desc() Desc

	merge(src Metric)
	snapshot() MetricSnapshot
}

// Registry holds a set of uniquely-named metrics. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// register adds m, panicking on a duplicate name — two registrations of
// one name is a programmer error, not a data condition.
func (r *Registry) register(m Metric) {
	d := m.Desc()
	if d.Name == "" {
		panic("obs: metric registered with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[d.Name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", d.Name))
	}
	r.metrics[d.Name] = m
}

// NewCounter registers a monotonically increasing int64 counter.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	c := &Counter{family: newFamily(Desc{Name: name, Type: TypeCounter, Help: help, Labels: labels})}
	r.register(c)
	return c
}

// NewGauge registers a float64 level that can move both ways. Gauges
// merge by summation (per-shard gauges are additive levels, e.g. live
// entry counts), which keeps Registry.Merge exact.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{family: newFamily(Desc{Name: name, Type: TypeGauge, Help: help, Labels: labels})}
	r.register(g)
	return g
}

// NewHistogram registers a fixed-bin histogram over [lo, hi) with the
// given bin count, backed by stats.Sketch (observations outside the
// range clamp into the edge bins; min/max/sum stay exact). Histograms
// merge exactly, bin by bin.
func (r *Registry) NewHistogram(name, help string, lo, hi float64, bins int, labels ...string) *Histogram {
	h := &Histogram{
		family: newFamily(Desc{Name: name, Type: TypeHistogram, Help: help, Labels: labels}),
		lo:     lo, hi: hi, bins: bins,
	}
	r.register(h)
	return h
}

// Descs returns every registered descriptor sorted by name — the
// catalogue the documentation generator renders.
func (r *Registry) Descs() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Desc, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.Desc())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merge folds src into r. Every metric in src must exist in r with an
// identical descriptor (both registries built by the same registration
// functions); a name or shape mismatch panics, because merging
// differently-declared metrics would corrupt both. Counters and gauges
// add; histograms merge their sketches exactly. Merge is deterministic:
// called in a fixed order (e.g. fleet shard order) it produces
// bit-identical results regardless of how work was parallelised.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	names, srcMetrics := src.export()
	for i, name := range names {
		dst, ok := r.lookup(name)
		if !ok {
			panic(fmt.Sprintf("obs: merging unknown metric %q", name))
		}
		if !sameDesc(dst.Desc(), srcMetrics[i].Desc()) {
			panic(fmt.Sprintf("obs: merging metric %q with mismatched descriptors", name))
		}
		dst.merge(srcMetrics[i])
	}
}

// export returns the registry's metrics in sorted-name order.
func (r *Registry) export() ([]string, []Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]Metric, len(names))
	for i, name := range names {
		metrics[i] = r.metrics[name]
	}
	return names, metrics
}

// lookup finds a metric by name.
func (r *Registry) lookup(name string) (Metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	return m, ok
}

func sameDesc(a, b Desc) bool {
	if a.Name != b.Name || a.Type != b.Type || len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return false
		}
	}
	return true
}

// ----- families and children -----

// labelSep joins label values into child keys; it cannot appear in
// reasonable label values (ASCII unit separator).
const labelSep = "\x1f"

// family is the shared child bookkeeping of all three metric types.
type family struct {
	desc Desc

	mu       sync.Mutex
	children map[string][]string // child key → label values
}

func newFamily(d Desc) family {
	return family{desc: d, children: make(map[string][]string)}
}

// Desc implements Metric.
func (f *family) Desc() Desc { return f.desc }

// childKey validates the label-value tuple and returns its map key.
func (f *family) childKey(values []string) string {
	if len(values) != len(f.desc.Labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label value(s), got %d",
			f.desc.Name, len(f.desc.Labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// sortedKeys returns the child keys in deterministic order. Caller
// holds f.mu.
func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counter is a monotonically increasing counter family.
type Counter struct {
	family
	values map[string]*int64
}

// With returns the child for the given label values, creating it on
// first use. Call with no arguments for a label-less counter.
func (c *Counter) With(values ...string) *CounterChild {
	key := c.childKey(values)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.values == nil {
		c.values = make(map[string]*int64)
	}
	v, ok := c.values[key]
	if !ok {
		v = new(int64)
		c.values[key] = v
		c.children[key] = append([]string(nil), values...)
	}
	return &CounterChild{c: c, v: v}
}

// Inc is shorthand for With().Inc() on a label-less counter.
func (c *Counter) Inc() { c.With().Inc() }

// Add is shorthand for With().Add(n) on a label-less counter.
func (c *Counter) Add(n int64) { c.With().Add(n) }

// CounterChild is one labelled time series of a Counter.
type CounterChild struct {
	c *Counter
	v *int64
}

// Inc adds 1.
func (cc *CounterChild) Inc() { cc.Add(1) }

// Add adds n; negative increments panic (counters are monotone).
func (cc *CounterChild) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter %q decremented by %d", cc.c.desc.Name, n))
	}
	cc.c.mu.Lock()
	*cc.v += n
	cc.c.mu.Unlock()
}

// Value reports the child's current count.
func (cc *CounterChild) Value() int64 {
	cc.c.mu.Lock()
	defer cc.c.mu.Unlock()
	return *cc.v
}

func (c *Counter) merge(src Metric) {
	s := src.(*Counter)
	s.mu.Lock()
	keys := s.sortedKeys()
	vals := make([]int64, len(keys))
	labels := make([][]string, len(keys))
	for i, k := range keys {
		vals[i] = *s.values[k]
		labels[i] = s.children[k]
	}
	s.mu.Unlock()
	for i, k := range keys {
		c.With(labels[i]...)
		c.mu.Lock()
		*c.values[k] += vals[i]
		c.mu.Unlock()
	}
}

func (c *Counter) snapshot() MetricSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := MetricSnapshot{Name: c.desc.Name, Type: c.desc.Type, Help: c.desc.Help, Labels: c.desc.Labels}
	for _, k := range c.sortedKeys() {
		snap.Values = append(snap.Values, ValueSnapshot{
			LabelValues: c.children[k],
			Value:       float64(*c.values[k]),
		})
	}
	return snap
}

// Gauge is a float64 level family.
type Gauge struct {
	family
	values map[string]*float64
}

// With returns the child for the given label values, creating it on
// first use.
func (g *Gauge) With(values ...string) *GaugeChild {
	key := g.childKey(values)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.values == nil {
		g.values = make(map[string]*float64)
	}
	v, ok := g.values[key]
	if !ok {
		v = new(float64)
		g.values[key] = v
		g.children[key] = append([]string(nil), values...)
	}
	return &GaugeChild{g: g, v: v}
}

// Set is shorthand for With().Set(v) on a label-less gauge.
func (g *Gauge) Set(v float64) { g.With().Set(v) }

// Add is shorthand for With().Add(v) on a label-less gauge.
func (g *Gauge) Add(v float64) { g.With().Add(v) }

// GaugeChild is one labelled time series of a Gauge.
type GaugeChild struct {
	g *Gauge
	v *float64
}

// Set replaces the level.
func (gc *GaugeChild) Set(v float64) {
	gc.g.mu.Lock()
	*gc.v = v
	gc.g.mu.Unlock()
}

// Add moves the level by d (negative is fine).
func (gc *GaugeChild) Add(d float64) {
	gc.g.mu.Lock()
	*gc.v += d
	gc.g.mu.Unlock()
}

// Value reports the child's current level.
func (gc *GaugeChild) Value() float64 {
	gc.g.mu.Lock()
	defer gc.g.mu.Unlock()
	return *gc.v
}

func (g *Gauge) merge(src Metric) {
	s := src.(*Gauge)
	s.mu.Lock()
	keys := s.sortedKeys()
	vals := make([]float64, len(keys))
	labels := make([][]string, len(keys))
	for i, k := range keys {
		vals[i] = *s.values[k]
		labels[i] = s.children[k]
	}
	s.mu.Unlock()
	for i := range keys {
		g.With(labels[i]...).Add(vals[i])
	}
}

func (g *Gauge) snapshot() MetricSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := MetricSnapshot{Name: g.desc.Name, Type: g.desc.Type, Help: g.desc.Help, Labels: g.desc.Labels}
	for _, k := range g.sortedKeys() {
		snap.Values = append(snap.Values, ValueSnapshot{
			LabelValues: g.children[k],
			Value:       *g.values[k],
		})
	}
	return snap
}

// Histogram is a fixed-bin histogram family backed by stats.Sketch.
type Histogram struct {
	family
	lo, hi float64
	bins   int
	values map[string]*stats.Sketch
}

// Bounds reports the histogram's [lo, hi) range and bin count.
func (h *Histogram) Bounds() (lo, hi float64, bins int) { return h.lo, h.hi, h.bins }

// With returns the child for the given label values, creating it on
// first use.
func (h *Histogram) With(values ...string) *HistogramChild {
	key := h.childKey(values)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.values == nil {
		h.values = make(map[string]*stats.Sketch)
	}
	sk, ok := h.values[key]
	if !ok {
		sk = stats.NewSketch(h.lo, h.hi, h.bins)
		h.values[key] = sk
		h.children[key] = append([]string(nil), values...)
	}
	return &HistogramChild{h: h, sk: sk}
}

// Observe is shorthand for With().Observe(x) on a label-less histogram.
func (h *Histogram) Observe(x float64) { h.With().Observe(x) }

// HistogramChild is one labelled time series of a Histogram.
type HistogramChild struct {
	h  *Histogram
	sk *stats.Sketch
}

// Observe records one observation.
func (hc *HistogramChild) Observe(x float64) {
	hc.h.mu.Lock()
	hc.sk.Add(x)
	hc.h.mu.Unlock()
}

// Count reports the child's observation count.
func (hc *HistogramChild) Count() int64 {
	hc.h.mu.Lock()
	defer hc.h.mu.Unlock()
	return hc.sk.Count()
}

func (h *Histogram) merge(src Metric) {
	s := src.(*Histogram)
	s.mu.Lock()
	keys := s.sortedKeys()
	sketches := make([]*stats.Sketch, len(keys))
	labels := make([][]string, len(keys))
	for i, k := range keys {
		// Copy under s.mu so a concurrent Observe on src cannot race the
		// merge (merge itself is called sequentially, but src may still
		// be live).
		cp := *s.values[k]
		cp.Counts = append([]int64(nil), s.values[k].Counts...)
		sketches[i] = &cp
		labels[i] = s.children[k]
	}
	s.mu.Unlock()
	for i, k := range keys {
		h.With(labels[i]...)
		h.mu.Lock()
		h.values[k].Merge(sketches[i])
		h.mu.Unlock()
	}
}

func (h *Histogram) snapshot() MetricSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := MetricSnapshot{Name: h.desc.Name, Type: h.desc.Type, Help: h.desc.Help, Labels: h.desc.Labels}
	for _, k := range h.sortedKeys() {
		sk := h.values[k]
		v := ValueSnapshot{
			LabelValues: h.children[k],
			Count:       sk.Count(),
			Sum:         sk.Sum,
		}
		if sk.Count() > 0 {
			// Empty sketches hold ±Inf min/max, which JSON cannot encode;
			// only populated children report their envelope and quantiles.
			v.Min, v.Max = sk.Min, sk.Max
			v.P50 = sk.Quantile(0.50)
			v.P90 = sk.Quantile(0.90)
			v.P99 = sk.Quantile(0.99)
		}
		snap.Values = append(snap.Values, v)
	}
	return snap
}
