package obs

import (
	"sync"
	"time"

	"threegol/internal/clock"
)

// SpanRingSize is how many finished spans a Tracer retains for
// inspection (oldest evicted first).
const SpanRingSize = 256

// spanSecondsBins: [0, 60) seconds in 50 ms bins covers every
// request-scale operation in the pipeline; longer spans clamp into the
// last bin with their exact durations preserved in min/max/sum.
const (
	spanSecondsLo   = 0
	spanSecondsHi   = 60
	spanSecondsBins = 1200
)

// Tracer is the lightweight span layer: Start/End pairs time one named
// operation (a permit decision, a chunk transfer, a proxy request),
// record it into the registry's "obs_span_seconds" histogram, and keep
// the most recent SpanRingSize spans in a ring for debugging.
//
// All timestamps come from the injected clock.Clock, never the wall
// clock directly, so a tracer driven by a fake or virtual clock is
// fully deterministic.
type Tracer struct {
	clk  clock.Clock
	durs *Histogram

	mu   sync.Mutex
	ring []SpanRecord
	next int
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// NewTracer registers the tracer's span-duration histogram on r and
// returns a tracer timing with clk (nil selects clock.System).
func NewTracer(r *Registry, clk clock.Clock) *Tracer {
	return &Tracer{
		clk: clock.Or(clk),
		durs: r.NewHistogram("obs_span_seconds",
			"Duration of traced operations, by span name.",
			spanSecondsLo, spanSecondsHi, spanSecondsBins, "span"),
	}
}

// Start opens a span. The returned Span is a value; pass it around or
// End it in a defer. Start on a nil Tracer returns a zero Span, so
// optional tracing needs no nil checks on either side.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clk.Now()}
}

// Span is one in-flight traced operation.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// End closes the span, records its duration, and returns it. End on a
// zero Span is a no-op (so optional tracing needs no nil checks).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := s.t.clk.Since(s.start)
	s.t.durs.With(s.name).Observe(d.Seconds())
	s.t.record(SpanRecord{Name: s.name, Start: s.start, Duration: d})
	return d
}

func (s *Tracer) record(rec SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < SpanRingSize {
		s.ring = append(s.ring, rec)
		return
	}
	s.ring[s.next] = rec
	s.next = (s.next + 1) % SpanRingSize
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SpanSnapshot is the JSON shape of one retained span, as served by
// SpansHandler and embedded in debug snapshots.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Start is the span's start time in RFC 3339 format with
	// nanoseconds.
	Start string `json:"start"`
	// DurationSecs is the span's length in seconds.
	DurationSecs float64 `json:"duration_secs"`
}

// Snapshot renders the span ring oldest-first in a JSON-friendly,
// deterministic shape.
func (t *Tracer) Snapshot() []SpanSnapshot {
	recent := t.Recent()
	out := make([]SpanSnapshot, len(recent))
	for i, r := range recent {
		out[i] = SpanSnapshot{
			Name:         r.Name,
			Start:        r.Start.Format(time.RFC3339Nano),
			DurationSecs: r.Duration.Seconds(),
		}
	}
	return out
}
