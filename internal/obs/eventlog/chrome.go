package eventlog

import (
	"encoding/json"
	"io"
	"strings"
)

// chromeEvent is one entry in the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). Complete spans use ph "X" with a
// microsecond ts/dur; points use ph "i" (instant, thread-scoped).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports events in Chrome's trace_event JSON format
// for visualization in chrome://tracing or Perfetto. Shards map to
// pids; traces map to dense per-shard tids in first-seen order, so
// every transaction renders as its own row and the mapping is
// deterministic. Sim-seconds map to microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	a := Assemble(events)
	tids := make(map[string]int)
	tid := func(trace string) int {
		id, ok := tids[trace]
		if !ok {
			id = len(tids)
			tids[trace] = id
		}
		return id
	}
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, t := range a.Traces {
		row := tid(t.ID)
		for _, n := range t.Spans {
			if !n.Ended {
				continue
			}
			args := copyAttrs(n.Attrs)
			if args == nil {
				args = map[string]string{}
			}
			args["trace"] = t.ID
			args["span"] = n.ID
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: n.Name, Cat: category(n.Name), Ph: "X",
				Ts: n.Start * 1e6, Dur: n.Duration() * 1e6,
				Pid: n.Shard, Tid: row, Args: args,
			})
		}
	}
	for _, ev := range events {
		if ev.Kind != KindPoint {
			continue
		}
		args := copyAttrs(ev.Attrs)
		if args == nil {
			args = map[string]string{}
		}
		args["trace"] = ev.Trace
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name, Cat: category(ev.Name), Ph: "i",
			Ts: ev.T * 1e6, Pid: ev.Shard, Tid: tid(ev.Trace), S: "t",
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// category maps "scheduler.attempt" to "scheduler" — the subsystem
// prefix colours lanes in the viewer.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
