package eventlog

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeNow returns a controllable time source.
func fakeNow(t *float64) func() float64 { return func() float64 { return *t } }

func TestSpanLifecycleAndDeterminism(t *testing.T) {
	run := func() []byte {
		now := 0.0
		l := New(3, 42, fakeNow(&now))
		root := l.Begin(TraceContext{}, "scheduler.transaction", "algo", "greedy")
		now = 1.5
		child := l.Begin(root.Context(), "scheduler.attempt", "path", "dsl")
		l.Point(child.Context(), "scheduler.retry", "try", Int(1))
		now = 2.25
		child.End("outcome", "ok", "bytes", Int(1024))
		now = 3.0
		root.End("outcome", "ok")
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs produced different streams:\n%s\nvs\n%s", a, b)
	}

	evs, err := ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	if evs[0].Kind != KindBegin || evs[0].Name != "scheduler.transaction" {
		t.Fatalf("event 0 = %+v, want transaction begin", evs[0])
	}
	if evs[1].Parent != evs[0].Span {
		t.Fatalf("attempt parent %q != transaction span %q", evs[1].Parent, evs[0].Span)
	}
	if evs[1].Trace != evs[0].Trace {
		t.Fatalf("attempt trace %q != transaction trace %q", evs[1].Trace, evs[0].Trace)
	}
	if evs[2].Kind != KindPoint || evs[2].Parent != evs[1].Span {
		t.Fatalf("retry point = %+v, want point parented to attempt", evs[2])
	}
	if evs[3].T != 2.25 || evs[3].Attrs["bytes"] != "1024" {
		t.Fatalf("attempt end = %+v", evs[3])
	}
	for i, ev := range evs {
		if ev.Shard != 3 {
			t.Fatalf("event %d shard = %d, want 3", i, ev.Shard)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i)
		}
	}
	if st, err := Check(evs); err != nil {
		t.Fatalf("Check: %v", err)
	} else if st.Spans != 2 || st.Points != 1 || st.Traces != 1 || st.Unended != 0 {
		t.Fatalf("Check stats = %+v", st)
	}
}

func TestSeedAndShardChangeIDs(t *testing.T) {
	id := func(shard int, seed int64) string {
		l := New(shard, seed, nil)
		return l.Begin(TraceContext{}, "x").Context().Trace
	}
	base := id(0, 1)
	if id(0, 2) == base {
		t.Fatal("different seeds produced the same trace ID")
	}
	if id(1, 1) == base {
		t.Fatal("different shards produced the same trace ID")
	}
	if id(0, 1) != base {
		t.Fatal("same (shard, seed) produced different trace IDs")
	}
}

func TestNilSafety(t *testing.T) {
	var l *Log
	sp := l.Begin(TraceContext{}, "noop")
	sp.End()
	l.Point(sp.Context(), "noop")
	l.Merge(nil)
	if l.Len() != 0 || l.Events() != nil || l.Dropped() != 0 || l.Now() != 0 {
		t.Fatal("nil log accessors not zero")
	}
	var zero Span
	zero.End()
	if zero.Context().Valid() {
		t.Fatal("zero span context valid")
	}
}

func TestRingEviction(t *testing.T) {
	l := NewRing(0, 7, nil, 3)
	for i := 0; i < 5; i++ {
		l.Point(TraceContext{}, "tick", "i", Int(int64(i)))
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	if evs[0].Attrs["i"] != "2" || evs[2].Attrs["i"] != "4" {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Fatalf("ring seqs = %d..%d, want 2..4", evs[0].Seq, evs[2].Seq)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
}

func TestMergePreservesShardAndSeq(t *testing.T) {
	mk := func(shard int) *Log {
		l := New(shard, 9, nil)
		sp := l.Begin(TraceContext{}, "fleet.session")
		sp.End()
		return l
	}
	merged := mk(0)
	merged.Merge(mk(1))
	merged.Merge(mk(2))
	evs := merged.Events()
	if len(evs) != 6 {
		t.Fatalf("merged %d events, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.Shard != i/2 {
			t.Fatalf("event %d shard = %d, want %d", i, ev.Shard, i/2)
		}
		if ev.Seq != uint64(i%2) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i%2)
		}
	}
	if _, err := Check(evs); err != nil {
		t.Fatalf("Check on merged stream: %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: "t1", Span: "s1"}
	ctx := NewContext(context.Background(), tc)
	got, ok := FromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("FromContext = %+v, %v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
}

func TestHTTPPropagation(t *testing.T) {
	h := http.Header{}
	InjectHTTP(h, TraceContext{Trace: "abc", Span: "def"})
	if got := h.Get(HeaderTrace); got != "abc/def" {
		t.Fatalf("header = %q", got)
	}
	tc, ok := ExtractHTTP(h)
	if !ok || tc.Trace != "abc" || tc.Span != "def" {
		t.Fatalf("ExtractHTTP = %+v, %v", tc, ok)
	}
	InjectHTTP(h, TraceContext{}) // zero context must not clobber
	if got := h.Get(HeaderTrace); got != "abc/def" {
		t.Fatalf("zero inject clobbered header: %q", got)
	}
	if _, ok := ExtractHTTP(http.Header{}); ok {
		t.Fatal("empty header extracted a trace")
	}
}

func TestHandler(t *testing.T) {
	l := New(0, 1, nil)
	l.Begin(TraceContext{}, "op").End()
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	evs, err := ReadJSONL(resp.Body)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	post, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

func TestCheckRejectsMalformedStreams(t *testing.T) {
	ok := func() []Event {
		l := New(0, 1, nil)
		sp := l.Begin(TraceContext{}, "op")
		sp.End()
		return l.Events()
	}
	cases := []struct {
		name   string
		mutate func([]Event) []Event
		want   string
	}{
		{"bad kind", func(e []Event) []Event { e[0].Kind = "boom"; return e }, "invalid kind"},
		{"empty name", func(e []Event) []Event { e[0].Name = ""; return e }, "empty name"},
		{"empty trace", func(e []Event) []Event { e[0].Trace = ""; return e }, "empty trace"},
		{"seq regression", func(e []Event) []Event { e[1].Seq = 0; return e }, "sequence not increasing"},
		{"end before begin", func(e []Event) []Event { return []Event{e[1]} }, "end without begin"},
		{"negative time", func(e []Event) []Event { e[0].T = -1; return e }, "bad timestamp"},
		{"end precedes begin time", func(e []Event) []Event { e[0].T = 5; return e }, "before begin"},
		{"double end", func(e []Event) []Event {
			dup := e[1]
			dup.Seq = 2
			return append(e, dup)
		}, "ended twice"},
	}
	for _, tc := range cases {
		evs := tc.mutate(ok())
		_, err := Check(evs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Check err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckToleratesForeignParentsAndUnendedSpans(t *testing.T) {
	l := New(0, 1, nil)
	// Parent from "another process": not in this log.
	sp := l.Begin(TraceContext{Trace: "remote-trace", Span: "remote-span"}, "permit.decision")
	sp.End("allowed", "true")
	l.Begin(TraceContext{}, "daemon.loop") // never ended (ring snapshot shape)
	st, err := Check(l.Events())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if st.Unended != 1 {
		t.Fatalf("Unended = %d, want 1", st.Unended)
	}
}

func TestSinceStart(t *testing.T) {
	now := SinceStart(nil)
	if v := now(); v < 0 {
		t.Fatalf("SinceStart went backwards: %v", v)
	}
}

func TestFormatters(t *testing.T) {
	if Int(-42) != "-42" {
		t.Fatalf("Int(-42) = %q", Int(-42))
	}
	if Float(1.5) != "1.5" {
		t.Fatalf("Float(1.5) = %q", Float(1.5))
	}
}
