package eventlog

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildSessionLog fabricates a fleet-shaped trace: a session root with
// an ADSL leg and a 3G leg, the ADSL leg ending last.
func buildSessionLog(t *testing.T) *Log {
	t.Helper()
	now := 0.0
	l := New(0, 11, fakeNow(&now))
	root := l.Begin(TraceContext{}, "fleet.session", "bytes", Int(8_000_000))
	adsl := l.Begin(root.Context(), "fleet.path.adsl", "path", "adsl")
	g3 := l.Begin(root.Context(), "fleet.path.3g", "path", "3g")
	g3.EndAt(4.0, "bytes", Int(3_000_000))
	adsl.EndAt(10.0, "bytes", Int(5_000_000))
	root.EndAt(10.0, "onloaded", Int(3_000_000))
	return l
}

func TestAssembleAndCriticalPath(t *testing.T) {
	l := buildSessionLog(t)
	a := Assemble(l.Events())
	if len(a.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(a.Traces))
	}
	tr := a.Traces[0]
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "fleet.session" {
		t.Fatalf("roots = %+v", tr.Roots)
	}
	if len(tr.Roots[0].Children) != 2 {
		t.Fatalf("session has %d children, want 2", len(tr.Roots[0].Children))
	}
	if got := a.TraceByID(tr.ID); got != tr {
		t.Fatalf("TraceByID mismatch")
	}

	steps := tr.CriticalPath()
	if len(steps) != 2 {
		t.Fatalf("critical path has %d steps, want 2: %+v", len(steps), steps)
	}
	if steps[0].Span.Name != "fleet.session" || steps[1].Span.Name != "fleet.path.adsl" {
		t.Fatalf("critical path = %s -> %s, want session -> adsl",
			steps[0].Span.Name, steps[1].Span.Name)
	}
	// The ADSL leg (10s) dominates; the session contributes 0 exclusive
	// time on top of it.
	if steps[0].Self != 0 || steps[1].Self != 10.0 {
		t.Fatalf("self times = %v, %v; want 0, 10", steps[0].Self, steps[1].Self)
	}
}

func TestCriticalPathSkipsUnendedRoots(t *testing.T) {
	l := New(0, 1, nil)
	l.Begin(TraceContext{}, "dangling")
	a := Assemble(l.Events())
	if steps := a.Traces[0].CriticalPath(); steps != nil {
		t.Fatalf("critical path over unended root = %+v, want nil", steps)
	}
}

func TestFindAnomalies(t *testing.T) {
	now := 0.0
	l := New(0, 5, fakeNow(&now))

	// Retry storm: one transaction with 3 retries.
	storm := l.Begin(TraceContext{}, "scheduler.transaction")
	for i := 0; i < 3; i++ {
		sp := l.Begin(storm.Context(), "scheduler.attempt", "path", "dsl", "item", "a")
		l.Point(sp.Context(), "scheduler.retry", "try", Int(int64(i)))
		now += 1.0
		sp.End("outcome", "error")
	}
	l.Point(storm.Context(), "scheduler.exhausted", "item", "a")
	storm.End("outcome", "error")

	// Straggler: path "slow" takes ~10x the median path mean (the dsl
	// and fast paths sit near 1s and 0.1s). Plus a duplicate that lost.
	tx := l.Begin(TraceContext{}, "scheduler.transaction")
	for i := 0; i < 3; i++ {
		fast := l.Begin(tx.Context(), "scheduler.attempt", "path", "fast")
		now += 0.1
		fast.End("outcome", "ok", "bytes", Int(1000))
		slow := l.Begin(tx.Context(), "scheduler.attempt", "path", "slow")
		now += 10.0
		slow.End("outcome", "ok", "bytes", Int(1000))
	}
	l.Point(tx.Context(), "scheduler.duplicate", "item", "b", "path", "slow")
	dup := l.Begin(tx.Context(), "scheduler.attempt", "path", "slow", "item", "b")
	now += 0.5
	dup.End("outcome", "lost_race", "bytes", Int(777))
	tx.End("outcome", "ok")

	an := Assemble(l.Events()).FindAnomalies()
	if len(an.RetryStorms) != 1 || an.RetryStorms[0].Count != 3 {
		t.Fatalf("retry storms = %+v, want one with count 3", an.RetryStorms)
	}
	if len(an.StragglerPaths) != 1 || an.StragglerPaths[0].Path != "slow" {
		t.Fatalf("stragglers = %+v, want [slow]", an.StragglerPaths)
	}
	if an.DuplicateEvents != 1 {
		t.Fatalf("duplicates = %d, want 1", an.DuplicateEvents)
	}
	if an.WastedBytes != 777 {
		t.Fatalf("wasted bytes = %d, want 777", an.WastedBytes)
	}
	if an.BudgetExhausted != 1 {
		t.Fatalf("budget exhausted = %d, want 1", an.BudgetExhausted)
	}
}

func TestWriteChromeTraceSchema(t *testing.T) {
	l := buildSessionLog(t)
	l.Point(TraceContext{Trace: l.Events()[0].Trace}, "fleet.budget_exhausted")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, l.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	// Schema check: decode strictly into the trace_event shape.
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *int              `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("chrome export failed schema decode: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 { // 3 spans + 1 instant
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
	var sawInstant, sawComplete bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Cat == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("trace event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			sawComplete = true
			if ev.Name == "fleet.path.adsl" && ev.Dur != 10e6 {
				t.Fatalf("adsl dur = %v us, want 10e6", ev.Dur)
			}
		case "i":
			sawInstant = true
			if ev.S != "t" {
				t.Fatalf("instant scope = %q, want t", ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Args["trace"] == "" {
			t.Fatalf("trace event missing trace arg: %+v", ev)
		}
		if ev.Cat != "fleet" {
			t.Fatalf("cat = %q, want fleet", ev.Cat)
		}
	}
	if !sawInstant || !sawComplete {
		t.Fatalf("export missing phases: instant=%v complete=%v", sawInstant, sawComplete)
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, l.Events()); err != nil {
		t.Fatalf("second WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome export not deterministic")
	}
}
