// Package eventlog is the repository's deterministic flight recorder: a
// structured, causal event log in the style of Dapper-like request
// tracing, kept as reproducible as the simulations it observes. Where
// internal/obs aggregates (how much, how often), the event log explains
// (why was *this* item slow): every scheduler assignment, transfer
// attempt, retry, requeue, endgame duplicate, permit decision and
// completion is one event on a trace, and cmd/3goltrace reconstructs
// timelines, critical paths and anomaly summaries from the stream.
//
// Three properties distinguish it from an off-the-shelf tracer:
//
//   - Deterministic IDs. Trace and span IDs derive from a seeded
//     per-shard counter (splitmix64 over the (seed, shard, counter)
//     triple) — never from wall clock or global randomness. Two runs of
//     the same simulation emit byte-identical streams. The package is on
//     the 3golvet SimPackages list.
//   - Deterministic time. The log never reads a clock itself: it stamps
//     events through an injected `func() float64` time source — a
//     simclock's Now in simulations, SinceStart(clock) in daemons.
//   - Exact merging. Per-shard logs concatenate in shard order through
//     Merge (the internal/fleet.Mergeable contract), so a 16-worker
//     fleet run and a single-worker run of the same config produce the
//     same bytes, pinned by internal/fleet's determinism tests.
//
// Spans nest through TraceContext, which also rides context.Context
// values and an HTTP header (see context.go) so a trace survives the
// client → proxy → permit-backend process boundaries.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"threegol/internal/clock"
)

// Event kinds: a span opens with a begin, closes with an end carrying
// the same span ID, and instantaneous facts are points.
const (
	KindBegin = "begin"
	KindEnd   = "end"
	KindPoint = "point"
)

// TraceContext identifies a position in a trace: the trace itself and
// the current (innermost) span. The zero value means "no trace"; every
// API treats it as "start a new root trace" or "emit unparented".
type TraceContext struct {
	Trace string
	Span  string
}

// Valid reports whether tc names a trace.
func (tc TraceContext) Valid() bool { return tc.Trace != "" }

// Event is one flight-recorder record. Attrs is a map so encoding/json
// serialises it in sorted key order — a requirement for byte-identical
// streams, not a convenience.
type Event struct {
	// Shard and Seq identify the event's origin log and its emission
	// index there; merged streams keep both, so per-shard order stays
	// reconstructable.
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	// T is the event time in seconds on the log's injected time source
	// (virtual seconds in simulations).
	T float64 `json:"t"`
	// Kind is KindBegin, KindEnd or KindPoint.
	Kind string `json:"kind"`
	// Name identifies the operation, conventionally "<subsystem>.<op>"
	// ("scheduler.attempt", "fleet.session", "permit.decision").
	Name string `json:"name"`
	// Trace groups every event of one causal transaction.
	Trace string `json:"trace"`
	// Span is set on begin/end pairs; Parent, when set, is the enclosing
	// span (possibly from another process's log — parents cross process
	// boundaries via the HTTP header, so analyzers must not require
	// them to resolve locally).
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Attrs carries string key/value details (byte counts, outcomes,
	// path names). Numeric values are formatted with Int/Float so
	// streams stay deterministic.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Log is one shard's (or one process's) event stream. All methods are
// safe for concurrent use and nil-safe: a nil *Log records nothing, so
// instrumented code needs no guards — the same convention as the
// per-package obs Metrics.
type Log struct {
	shard int
	seed  int64
	now   func() float64

	mu      sync.Mutex
	nextSeq uint64
	nextID  uint64
	ring    int // 0 = unbounded
	start   int // ring read position
	events  []Event
	dropped uint64
}

// New returns an unbounded log for shard, deriving IDs from seed and
// stamping events on the injected time source (a simclock's Now, or
// SinceStart for real-time processes). The source is read outside the
// log's lock, so it must itself be safe for concurrent use when the log
// is shared across goroutines. A nil now stamps every event at 0 —
// causal order without timing.
func New(shard int, seed int64, now func() float64) *Log {
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &Log{shard: shard, seed: seed, now: now}
}

// NewRing is New with a bounded buffer retaining the most recent n
// events (oldest evicted first) — the shape daemons use for their
// /debug/events endpoint, where an unbounded log would leak.
func NewRing(shard int, seed int64, now func() float64, n int) *Log {
	l := New(shard, seed, now)
	if n > 0 {
		l.ring = n
	}
	return l
}

// SinceStart returns a time source measuring seconds since its own
// creation on clk (nil selects the system clock) — how daemons and
// prototype-path code stamp events. Simulations pass their simclock's
// Now instead and never touch this.
func SinceStart(clk clock.Clock) func() float64 {
	c := clock.Or(clk)
	start := c.Now()
	return func() float64 { return c.Since(start).Seconds() }
}

// Now reports the log's current time source reading (0 on a nil log).
func (l *Log) Now() float64 {
	if l == nil {
		return 0
	}
	return l.now()
}

// newIDLocked derives the next trace/span ID. The pre-mix input packs
// (shard, counter) into disjoint bit ranges and XORs the seed, so IDs
// are unique within a run and — because splitmix64's finaliser is a
// bijection — collision-free across shards sharing one seed. No wall
// clock, no global rand: byte-identical across runs. Caller holds l.mu.
func (l *Log) newIDLocked() string {
	l.nextID++
	x := uint64(l.seed) ^ (uint64(l.shard)+1)<<40 ^ l.nextID
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// emitLocked stamps and stores one event. Caller holds l.mu.
func (l *Log) emitLocked(ev Event) {
	ev.Shard = l.shard
	ev.Seq = l.nextSeq
	l.nextSeq++
	l.appendLocked(ev)
}

// appendLocked stores an already-stamped event, honouring the ring
// bound. Caller holds l.mu.
func (l *Log) appendLocked(ev Event) {
	if l.ring > 0 && len(l.events) == l.ring {
		l.events[l.start] = ev
		l.start = (l.start + 1) % l.ring
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Span is one in-flight traced operation. The zero value is inert:
// End and Context on it are no-ops, so spans from a nil log flow
// through instrumented code safely.
type Span struct {
	l    *Log
	name string
	tc   TraceContext
}

// Context returns the span's position for parenting children or
// propagating across a process boundary.
func (s Span) Context() TraceContext {
	if s.l == nil {
		return TraceContext{}
	}
	return s.tc
}

// Begin opens a span at the current time. A zero parent starts a new
// root trace; otherwise the span joins parent's trace as its child.
// attrs are alternating key/value pairs.
func (l *Log) Begin(parent TraceContext, name string, attrs ...string) Span {
	if l == nil {
		return Span{}
	}
	return l.beginAt(l.now(), parent, name, attrs)
}

// BeginAt is Begin at an explicit time — for analytic models that emit
// spans whose extent is computed rather than measured.
func (l *Log) BeginAt(t float64, parent TraceContext, name string, attrs ...string) Span {
	if l == nil {
		return Span{}
	}
	return l.beginAt(t, parent, name, attrs)
}

func (l *Log) beginAt(t float64, parent TraceContext, name string, attrs []string) Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	tc := TraceContext{Trace: parent.Trace}
	if tc.Trace == "" {
		tc.Trace = l.newIDLocked()
	}
	tc.Span = l.newIDLocked()
	l.emitLocked(Event{
		T: t, Kind: KindBegin, Name: name,
		Trace: tc.Trace, Span: tc.Span, Parent: parent.Span,
		Attrs: attrMap(attrs),
	})
	return Span{l: l, name: name, tc: tc}
}

// End closes the span at the current time, attaching outcome attrs.
func (s Span) End(attrs ...string) {
	if s.l == nil {
		return
	}
	s.EndAt(s.l.now(), attrs...)
}

// EndAt is End at an explicit time.
func (s Span) EndAt(t float64, attrs ...string) {
	if s.l == nil {
		return
	}
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	s.l.emitLocked(Event{
		T: t, Kind: KindEnd, Name: s.name,
		Trace: s.tc.Trace, Span: s.tc.Span,
		Attrs: attrMap(attrs),
	})
}

// Point emits an instantaneous event at the current time, parented to
// tc (a zero tc starts a fresh trace so the point is still findable).
func (l *Log) Point(tc TraceContext, name string, attrs ...string) {
	if l == nil {
		return
	}
	l.pointAt(l.now(), tc, name, attrs)
}

// PointAt is Point at an explicit time.
func (l *Log) PointAt(t float64, tc TraceContext, name string, attrs ...string) {
	if l == nil {
		return
	}
	l.pointAt(t, tc, name, attrs)
}

func (l *Log) pointAt(t float64, tc TraceContext, name string, attrs []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	trace := tc.Trace
	if trace == "" {
		trace = l.newIDLocked()
	}
	l.emitLocked(Event{
		T: t, Kind: KindPoint, Name: name,
		Trace: trace, Parent: tc.Span,
		Attrs: attrMap(attrs),
	})
}

// Events returns a copy of the stored events in order (oldest first for
// ring logs).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Len reports how many events the log currently holds.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Dropped reports how many events a ring log has evicted.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Merge appends src's events after l's, preserving each event's
// original shard and sequence — the fleet merge-reduce contract. Folded
// in shard order, the merged stream is bit-identical for every worker
// count, exactly like obs.Registry.Merge.
func (l *Log) Merge(src *Log) {
	if l == nil || src == nil {
		return
	}
	evs := src.Events()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range evs {
		l.appendLocked(ev)
	}
}

// WriteJSONL writes the log as JSON Lines, one event per line — the
// 3golfleet -events capture format and the /debug/events payload.
// encoding/json sorts map keys, so identical logs serialise to
// identical bytes.
func (l *Log) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, l.Events())
}

// WriteJSONL writes events as JSON Lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines event stream, skipping blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eventlog: reading stream: %w", err)
	}
	return out, nil
}

// attrMap pairs up alternating key/value arguments; a trailing key maps
// to the empty string.
func attrMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 < len(kv) {
			m[kv[i]] = kv[i+1]
		} else {
			m[kv[i]] = ""
		}
	}
	return m
}

// Int formats an attr value deterministically.
func Int(n int64) string { return strconv.FormatInt(n, 10) }

// Float formats an attr value deterministically (shortest round-trip
// form, the same across platforms).
func Float(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
