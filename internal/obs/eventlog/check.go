package eventlog

import (
	"fmt"
	"math"
)

// CheckStats summarises a validated stream.
type CheckStats struct {
	Events int
	Traces int
	Spans  int
	Points int
	// Unended counts spans with a begin but no end — expected in ring
	// snapshots from a live daemon, so it is reported, not an error.
	Unended int
}

// Check validates the structural invariants of an event stream:
//
//   - every event has a valid kind, a name and a trace ID;
//   - begin/end events carry a span ID;
//   - per shard, sequence numbers are strictly increasing (stream
//     integrity across merges);
//   - every end matches exactly one prior begin of the same span, at a
//     time no earlier than the begin, and no span ends twice;
//   - timestamps are finite and non-negative.
//
// It deliberately does NOT require parents to resolve: a parent span
// may live in another process's log (the HTTP propagation boundary),
// and ring buffers evict oldest events. Unended spans are likewise
// counted, not rejected, so daemon snapshots check clean.
func Check(events []Event) (CheckStats, error) {
	var st CheckStats
	st.Events = len(events)
	traces := make(map[string]bool)
	lastSeq := make(map[int]uint64)
	seqSeen := make(map[int]bool)
	type open struct {
		name string
		t    float64
	}
	begun := make(map[string]open)
	ended := make(map[string]bool)
	for i, ev := range events {
		where := fmt.Sprintf("event %d (shard %d seq %d)", i, ev.Shard, ev.Seq)
		switch ev.Kind {
		case KindBegin, KindEnd, KindPoint:
		default:
			return st, fmt.Errorf("%s: invalid kind %q", where, ev.Kind)
		}
		if ev.Name == "" {
			return st, fmt.Errorf("%s: empty name", where)
		}
		if ev.Trace == "" {
			return st, fmt.Errorf("%s: empty trace", where)
		}
		if math.IsNaN(ev.T) || math.IsInf(ev.T, 0) || ev.T < 0 {
			return st, fmt.Errorf("%s: bad timestamp %v", where, ev.T)
		}
		if seqSeen[ev.Shard] && ev.Seq <= lastSeq[ev.Shard] {
			return st, fmt.Errorf("%s: sequence not increasing (prev %d)", where, lastSeq[ev.Shard])
		}
		seqSeen[ev.Shard] = true
		lastSeq[ev.Shard] = ev.Seq
		traces[ev.Trace] = true
		switch ev.Kind {
		case KindBegin:
			if ev.Span == "" {
				return st, fmt.Errorf("%s: begin without span", where)
			}
			if _, ok := begun[ev.Span]; ok || ended[ev.Span] {
				return st, fmt.Errorf("%s: span %s begun twice", where, ev.Span)
			}
			begun[ev.Span] = open{name: ev.Name, t: ev.T}
			st.Spans++
		case KindEnd:
			if ev.Span == "" {
				return st, fmt.Errorf("%s: end without span", where)
			}
			b, ok := begun[ev.Span]
			if !ok {
				if ended[ev.Span] {
					return st, fmt.Errorf("%s: span %s ended twice", where, ev.Span)
				}
				return st, fmt.Errorf("%s: end without begin for span %s", where, ev.Span)
			}
			if ev.Name != b.name {
				return st, fmt.Errorf("%s: end name %q != begin name %q for span %s", where, ev.Name, b.name, ev.Span)
			}
			if ev.T < b.t {
				return st, fmt.Errorf("%s: span %s ends at %v before begin %v", where, ev.Span, ev.T, b.t)
			}
			delete(begun, ev.Span)
			ended[ev.Span] = true
		case KindPoint:
			st.Points++
		}
	}
	st.Traces = len(traces)
	st.Unended = len(begun)
	return st, nil
}
