package eventlog

import (
	"sort"
	"strings"
)

// SpanNode is one reconstructed span in a trace tree.
type SpanNode struct {
	ID       string
	Name     string
	Parent   string // "" for roots or cross-process parents absent locally
	Children []*SpanNode
	Start    float64
	End      float64
	Ended    bool
	Shard    int
	// Attrs merges the begin and end attrs (end wins on conflict), so
	// outcome attrs land on the node.
	Attrs  map[string]string
	Points []Event // points parented to this span, in stream order
}

// Duration is End-Start for ended spans, 0 otherwise.
func (n *SpanNode) Duration() float64 {
	if !n.Ended {
		return 0
	}
	return n.End - n.Start
}

// Trace is one causal transaction: all spans and points sharing a
// trace ID.
type Trace struct {
	ID    string
	Roots []*SpanNode // spans with no locally-resolvable parent
	Spans []*SpanNode // all spans, in begin order
	// Points holds points whose parent span was not found locally
	// (including unparented points), in stream order.
	Points []Event
}

// Analysis is the assembled view of a stream.
type Analysis struct {
	Traces []*Trace // first-seen order
	Events []Event
	byID   map[string]*Trace
}

// TraceByID returns the trace with the given ID, or nil.
func (a *Analysis) TraceByID(id string) *Trace {
	return a.byID[id]
}

// Assemble reconstructs span trees from a flat event stream. It never
// fails: malformed fragments (unended spans, ends without begins,
// missing parents) degrade to partial trees, because the analyzer must
// cope with ring-buffer snapshots and multi-process logs. Run Check
// first when integrity matters.
func Assemble(events []Event) *Analysis {
	a := &Analysis{Events: events, byID: make(map[string]*Trace)}
	nodes := make(map[string]*SpanNode)
	trace := func(id string) *Trace {
		t := a.byID[id]
		if t == nil {
			t = &Trace{ID: id}
			a.byID[id] = t
			a.Traces = append(a.Traces, t)
		}
		return t
	}
	for i := range events {
		ev := events[i]
		t := trace(ev.Trace)
		switch ev.Kind {
		case KindBegin:
			n := &SpanNode{
				ID: ev.Span, Name: ev.Name, Parent: ev.Parent,
				Start: ev.T, Shard: ev.Shard,
				Attrs: copyAttrs(ev.Attrs),
			}
			nodes[ev.Span] = n
			t.Spans = append(t.Spans, n)
		case KindEnd:
			if n := nodes[ev.Span]; n != nil {
				n.End = ev.T
				n.Ended = true
				for k, v := range ev.Attrs {
					if n.Attrs == nil {
						n.Attrs = make(map[string]string)
					}
					n.Attrs[k] = v
				}
			}
		case KindPoint:
			if n := nodes[ev.Parent]; n != nil {
				n.Points = append(n.Points, ev)
			} else {
				t.Points = append(t.Points, ev)
			}
		}
	}
	for _, t := range a.Traces {
		for _, n := range t.Spans {
			if p := nodes[n.Parent]; p != nil {
				p.Children = append(p.Children, n)
			} else {
				t.Roots = append(t.Roots, n)
			}
		}
	}
	return a
}

// PathStep is one hop on a critical path: the span, and how much of the
// transaction's duration it accounts for exclusively (its duration
// minus its critical child's).
type PathStep struct {
	Span *SpanNode
	Self float64
}

// CriticalPath walks the dominant chain of a trace: starting from the
// latest-ending root, repeatedly descend into the latest-ending child.
// For the paper's objective — total transaction time — the span that
// ends last is the one gating completion, so this chain is exactly
// "which path/retry dominated the transaction". Unended spans are
// skipped (their extent is unknown). Returns nil for traces with no
// ended root.
func (t *Trace) CriticalPath() []PathStep {
	cur := latestEnding(t.Roots)
	if cur == nil {
		return nil
	}
	var steps []PathStep
	for cur != nil {
		next := latestEnding(cur.Children)
		self := cur.Duration()
		if next != nil {
			self -= next.Duration()
			if self < 0 {
				self = 0
			}
		}
		steps = append(steps, PathStep{Span: cur, Self: self})
		cur = next
	}
	return steps
}

func latestEnding(nodes []*SpanNode) *SpanNode {
	var best *SpanNode
	for _, n := range nodes {
		if !n.Ended {
			continue
		}
		if best == nil || n.End > best.End ||
			(n.End == best.End && n.ID < best.ID) {
			best = n
		}
	}
	return best
}

// Anomalies is the summary surfaced by 3goltrace -anomalies.
type Anomalies struct {
	// RetryStorms lists traces with RetryStormThreshold or more retry
	// points, worst first.
	RetryStorms []TraceCount
	// StragglerPaths lists paths whose mean attempt duration is at
	// least 2x the median of all path means.
	StragglerPaths []PathStat
	// DuplicateEvents counts endgame duplicate assignments; WastedBytes
	// sums bytes attributed to lost or cancelled replicas.
	DuplicateEvents int
	WastedBytes     int64
	// BudgetExhausted counts events recording an exhausted 3G budget or
	// a fully exhausted item.
	BudgetExhausted int
}

// RetryStormThreshold is the retry count at which a trace is flagged.
const RetryStormThreshold = 3

// TraceCount pairs a trace with an event count.
type TraceCount struct {
	Trace string
	Count int
}

// PathStat summarises attempt durations on one named path.
type PathStat struct {
	Path     string
	Attempts int
	MeanSecs float64
}

// FindAnomalies scans the assembled analysis for the failure shapes the
// paper's evaluation cares about: retry storms (a flaky path eating the
// transaction), straggler paths (one link consistently slower than the
// rest), and duplicate waste (endgame replication spending bytes that
// lost the race).
func (a *Analysis) FindAnomalies() Anomalies {
	var out Anomalies
	type acc struct {
		n   int
		sum float64
	}
	paths := make(map[string]*acc)
	for _, t := range a.Traces {
		retries := 0
		for _, n := range t.Spans {
			for _, p := range n.Points {
				retries += classifyPoint(p, &out)
			}
			if strings.HasSuffix(n.Name, ".attempt") && n.Ended {
				if path := n.Attrs["path"]; path != "" {
					pa := paths[path]
					if pa == nil {
						pa = &acc{}
						paths[path] = pa
					}
					pa.n++
					pa.sum += n.Duration()
					switch n.Attrs["outcome"] {
					case "lost_race", "cancelled":
						out.WastedBytes += atoi(n.Attrs["bytes"])
					}
				}
			}
		}
		for _, p := range t.Points {
			retries += classifyPoint(p, &out)
		}
		if retries >= RetryStormThreshold {
			out.RetryStorms = append(out.RetryStorms, TraceCount{Trace: t.ID, Count: retries})
		}
	}
	sort.Slice(out.RetryStorms, func(i, j int) bool {
		if out.RetryStorms[i].Count != out.RetryStorms[j].Count {
			return out.RetryStorms[i].Count > out.RetryStorms[j].Count
		}
		return out.RetryStorms[i].Trace < out.RetryStorms[j].Trace
	})

	var stats []PathStat
	for name, pa := range paths {
		stats = append(stats, PathStat{Path: name, Attempts: pa.n, MeanSecs: pa.sum / float64(pa.n)})
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Path < stats[j].Path })
	if len(stats) >= 2 {
		means := make([]float64, len(stats))
		for i, s := range stats {
			means[i] = s.MeanSecs
		}
		sort.Float64s(means)
		median := means[len(means)/2]
		if len(means)%2 == 0 {
			median = (means[len(means)/2-1] + means[len(means)/2]) / 2
		}
		for _, s := range stats {
			if median > 0 && s.MeanSecs >= 2*median {
				out.StragglerPaths = append(out.StragglerPaths, s)
			}
		}
	}
	return out
}

// classifyPoint buckets one point event, returning 1 if it was a retry.
func classifyPoint(p Event, out *Anomalies) int {
	switch {
	case strings.HasSuffix(p.Name, ".retry"):
		return 1
	case strings.HasSuffix(p.Name, ".duplicate"):
		out.DuplicateEvents++
	case strings.HasSuffix(p.Name, ".budget_exhausted"), strings.HasSuffix(p.Name, ".exhausted"):
		out.BudgetExhausted++
	}
	return 0
}

func copyAttrs(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func atoi(s string) int64 {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}
