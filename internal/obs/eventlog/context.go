package eventlog

import (
	"context"
	"net/http"
	"strings"
)

// ctxKey is the private context.Context key for a TraceContext.
type ctxKey struct{}

// NewContext returns ctx carrying tc, so a trace position flows through
// call chains that only pass context (the transfer paths, HTTP
// handlers).
func NewContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the TraceContext carried by ctx, if any.
func FromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(ctxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// HeaderTrace is the propagation header carrying "trace/span" across
// process boundaries: client → proxy → permit backend. The receiving
// process records events parented to the sender's span, so 3goltrace
// can stitch multi-process logs into one causal trace.
const HeaderTrace = "X-3gol-Trace"

// InjectHTTP stamps tc onto h for an outgoing request. A zero tc leaves
// h untouched.
func InjectHTTP(h http.Header, tc TraceContext) {
	if !tc.Valid() {
		return
	}
	h.Set(HeaderTrace, tc.Trace+"/"+tc.Span)
}

// ExtractHTTP reads the propagation header from an incoming request.
func ExtractHTTP(h http.Header) (TraceContext, bool) {
	v := h.Get(HeaderTrace)
	if v == "" {
		return TraceContext{}, false
	}
	trace, span, _ := strings.Cut(v, "/")
	if trace == "" {
		return TraceContext{}, false
	}
	return TraceContext{Trace: trace, Span: span}, true
}

// Handler serves the log as JSON Lines — the /debug/events surface on
// 3gold and 3golpermitd. GET only; the payload is a point-in-time copy
// of the (ring) buffer.
func Handler(l *Log) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = l.WriteJSONL(w) // client disconnect; nothing to do
	})
}
