package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockIO flags mutexes held across calls that perform network/file I/O
// or block on channels. Holding a lock across a round trip serialises
// every other locker behind a remote peer — the data-plane antipattern
// the ROADMAP calls out ("stop holding locks across I/O"). Receivers are
// resolved via go/types (sync.Mutex, sync.RWMutex, sync.Locker), and a
// one-level call summary catches wrappers: a call to a function whose
// own body does I/O (or, transitively, reaches I/O through program-local
// calls) is flagged even though the I/O is not lexically under the lock.
//
// The lock region is lexical: from the Lock() statement to the matching
// Unlock() on the same receiver in the same function, or to the end of
// the function when the Unlock is deferred. Function literals inside the
// region are not inspected (a spawned goroutine does not hold the lock).
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flags network/file I/O and channel blocking while a mutex is held",
	Run:  runLockIO,
}

func runLockIO(f *File, report Reporter) {
	prog := f.Pkg.Prog
	if prog.Info == nil {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return true
		}
		for _, region := range lockRegions(prog, body) {
			checkLockRegion(prog, body, region, report)
		}
		return true
	})
}

// lockRegion is one lexical span during which a mutex is held.
type lockRegion struct {
	recv       string    // rendered receiver expression, for messages
	start, end token.Pos // (lock statement end, unlock position / body end]
}

// lockRegions finds the mutex-held spans of one function body. Lock
// statements inside nested function literals belong to those literals.
func lockRegions(prog *Program, body *ast.BlockStmt) []lockRegion {
	type lockSite struct {
		recv string
		kind string
		pos  token.Pos // end of the Lock() statement
	}
	var locks []lockSite
	unlocks := make(map[string][]token.Pos) // recv+kind → Unlock positions
	deferred := make(map[string]bool)       // recv+kind → deferred Unlock present
	inspectSameFunc(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if recv, kind, ok := mutexCall(prog, st.X, "Lock", "RLock"); ok {
				locks = append(locks, lockSite{recv: recv, kind: kind, pos: st.End()})
			} else if recv, kind, ok := mutexCall(prog, st.X, "Unlock", "RUnlock"); ok {
				unlocks[recv+"\x00"+kind] = append(unlocks[recv+"\x00"+kind], st.Pos())
			}
		case *ast.DeferStmt:
			if recv, kind, ok := mutexCall(prog, st.Call, "Unlock", "RUnlock"); ok {
				deferred[recv+"\x00"+kind] = true
			}
		}
		return true
	})
	var regions []lockRegion
	for _, l := range locks {
		key := l.recv + "\x00" + unlockName(l.kind)
		end := body.End()
		if !deferred[key] {
			// First matching Unlock lexically after the Lock bounds the
			// region; none found leaves the region open to body end.
			for _, up := range unlocks[key] {
				if up > l.pos && up < end {
					end = up
				}
			}
		}
		regions = append(regions, lockRegion{recv: l.recv, start: l.pos, end: end})
	}
	return regions
}

// mutexCall matches expr as recv.<name>() where recv's type is a sync
// mutex (sync.Mutex, sync.RWMutex, or the sync.Locker interface) and
// name is one of the given method names.
func mutexCall(prog *Program, expr ast.Expr, names ...string) (recv, name string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return "", "", false
	}
	fn := prog.calleeFunc(call)
	if fn == nil || !isMutexType(fn) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// asyncCalls collects the direct call expressions of go and defer
// statements in one function body: `go f()` does not block the spawner,
// and a deferred call runs at function exit, not at its lexical
// position. (Their argument expressions still evaluate inline and are
// still inspected.)
func asyncCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	async := make(map[*ast.CallExpr]bool)
	inspectSameFunc(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			async[st.Call] = true
		case *ast.DeferStmt:
			async[st.Call] = true
		}
		return true
	})
	return async
}

// isMutexType reports whether fn is a method of sync.Mutex, sync.RWMutex
// or the sync.Locker interface.
func isMutexType(fn *types.Func) bool {
	if receiverIs(fn, "sync", "Mutex") || receiverIs(fn, "sync", "RWMutex") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := sig.Recv().Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Locker" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkLockRegion reports blocking operations lexically inside a lock
// region. Condition-variable waits are exempt (sync.Cond.Wait must hold
// the mutex), and nested function literals are skipped.
func checkLockRegion(prog *Program, body *ast.BlockStmt, region lockRegion, report Reporter) {
	async := asyncCalls(body)
	inspectSameFunc(body, func(n ast.Node) bool {
		if n.Pos() <= region.start || n.End() > region.end {
			// Keep descending: children may still land inside the region.
			return true
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if async[node] {
				return true // go f() spawns f; the spawner does not block
			}
			if desc := prog.callBlockingIO(node); desc != "" {
				report(node.Pos(), "%s while %s is locked: release the lock before blocking", desc, region.recv)
			}
		case *ast.SendStmt:
			report(node.Pos(), "channel send while %s is locked: release the lock before blocking", region.recv)
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				report(node.Pos(), "channel receive while %s is locked: release the lock before blocking", region.recv)
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				report(node.Pos(), "blocking select while %s is locked: release the lock before blocking", region.recv)
			}
		}
		return true
	})
}
