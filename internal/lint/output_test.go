package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

func testReport() *Report {
	return &Report{
		Tool:           "3golvet",
		ElapsedSeconds: 1.25,
		Packages:       7,
		Fresh: []Finding{{
			File: "a.go", Line: 10, Column: 2,
			Analyzer: "lockio", Message: "I/O under lock",
		}},
		Baselined: []Finding{{
			File: "b.go", Line: 4, Column: 1,
			Analyzer: "ctxprop", Message: "frozen debt",
		}},
		StaleBaseline: []BaselineEntry{},
	}
}

func TestReportJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := testReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Tool != "3golvet" || got.ElapsedSeconds != 1.25 || got.Packages != 7 {
		t.Errorf("header fields round-tripped wrong: %+v", got)
	}
	if len(got.Fresh) != 1 || got.Fresh[0].Analyzer != "lockio" {
		t.Errorf("fresh findings round-tripped wrong: %+v", got.Fresh)
	}
	// bench.sh greps elapsed_seconds out of the artifact: pin the key.
	if !bytes.Contains(buf.Bytes(), []byte(`"elapsed_seconds"`)) {
		t.Errorf("JSON missing elapsed_seconds key:\n%s", buf.String())
	}
}

func TestReportSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := testReport().WriteSARIF(&buf, Analyzers()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "3golvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2 (one fresh, one baselined)", len(run.Results))
	}
	if run.Results[0].Level != "error" || run.Results[0].RuleID != "lockio" {
		t.Errorf("fresh finding rendered as %+v, want lockio error", run.Results[0])
	}
	if run.Results[1].Level != "note" || run.Results[1].RuleID != "ctxprop" {
		t.Errorf("baselined finding rendered as %+v, want ctxprop note", run.Results[1])
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %+v, want a.go:10", loc)
	}
}
