package lint

import "go/ast"

// SimPackages names the simulation packages (by package clause name) that
// must take time from internal/simclock or an injected clock.Clock and
// randomness from an injected *rand.Rand: their outputs feed the paper's
// trace-driven evaluation and must be bit-for-bit reproducible.
var SimPackages = map[string]bool{
	"linksim":   true,
	"tracesim":  true,
	"scheduler": true,
	"netem":     true,
	"dsl":       true,
	"cellular":  true,
	"diurnal":   true,
	"evalwild":  true,
	"core":      true,
	"hls":       true,
	"fleet":     true,
	"obs":       true,
	"eventlog":  true,
	"fault":     true,
}

// Wallclock flags direct wall-clock reads and sleeps. Simulation packages
// get a stricter message; everywhere else the call is still reported so
// that intentional real-time sites carry an explicit annotation.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags time.Now/time.Since/time.Sleep; sim packages must use simclock or an injected Clock",
	Run:  runWallclock,
}

func runWallclock(f *File, report Reporter) {
	alias := importAlias(f.AST, "time")
	if alias == "" {
		return
	}
	sim := SimPackages[f.Pkg.Name]
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != alias || id.Obj != nil { // Obj != nil: shadowed local
			return true
		}
		switch sel.Sel.Name {
		case "Now", "Since", "Sleep":
			if sim {
				report(call.Pos(), "time.%s in simulation package %q: use simclock or an injected clock.Clock",
					sel.Sel.Name, f.Pkg.Name)
			} else {
				report(call.Pos(), "time.%s reads the wall clock: inject a clock.Clock, or annotate //3golvet:allow wallclock if real time is intended",
					sel.Sel.Name)
			}
		}
		return true
	})
}
