package lint

import "go/ast"

// LockSafe flags mu.Lock() (or mu.RLock()) statements that are not
// immediately followed by defer mu.Unlock() inside functions with more
// than one way out. Manual unlock discipline is easy to get right with a
// single exit and easy to get wrong once early returns appear — a missed
// path deadlocks every later locker. Intentional manual sites (condition
// variables, unlock-before-callback) carry //3golvet:allow locksafe.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags Lock() without an immediate defer Unlock() in functions with multiple return paths",
	Run:  runLockSafe,
}

func runLockSafe(f *File, report Reporter) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkLockDiscipline(fn.Body, report)
			}
		case *ast.FuncLit:
			checkLockDiscipline(fn.Body, report)
		}
		return true
	})
}

func checkLockDiscipline(body *ast.BlockStmt, report Reporter) {
	if !multipleReturnPaths(body) {
		return
	}
	inspectSameFunc(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		for i, st := range list {
			recv, kind, ok := lockCall(st)
			if !ok {
				continue
			}
			if i+1 < len(list) && isDeferUnlock(list[i+1], recv, kind) {
				continue
			}
			report(st.Pos(), "%s.%s() is not immediately followed by defer %s.%s() in a function with multiple return paths",
				recv, kind, recv, unlockName(kind))
		}
		return true
	})
}

// multipleReturnPaths reports whether the function body has more than one
// way to exit: two or more return statements, or one early return plus
// falling off the end.
func multipleReturnPaths(body *ast.BlockStmt) bool {
	returns := 0
	inspectSameFunc(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			returns++
		}
		return true
	})
	if returns >= 2 {
		return true
	}
	if returns == 0 {
		return false
	}
	// One return: multiple paths unless it is the body's final statement.
	if len(body.List) == 0 {
		return false
	}
	_, endsWithReturn := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return !endsWithReturn
}

// lockCall matches a bare statement of the form recv.Lock() / recv.RLock().
func lockCall(st ast.Stmt) (recv, kind string, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
		return exprString(sel.X), name, true
	}
	return "", "", false
}

func isDeferUnlock(st ast.Stmt, recv, kind string) bool {
	ds, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == unlockName(kind) && exprString(sel.X) == recv
}

func unlockName(kind string) string {
	if kind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}
