package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map iteration feeding order-sensitive sinks inside the
// simulation packages — the #1 source of non-bit-identical merge-reduce.
// Go randomises map iteration order per run, so inside a SimPackages
// function a `range` over a map must not, per iteration:
//
//   - append to a slice declared outside the loop (unless the slice is
//     passed to sort.*/slices.Sort* later in the same function — the
//     collect-then-sort idiom stays legal);
//   - write through an encoder or writer (fmt.Fprint*, Write*, Encode);
//   - call a Merge method (Mergeable accumulators must fold in shard
//     order, never map order).
//
// Order-insensitive folds (summing into a scalar, writing into another
// map by the same key) are fine and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map-ordered writes to slices, encoders or Merge calls in simulation packages",
	Run:  runMapOrder,
}

func runMapOrder(f *File, report Reporter) {
	prog := f.Pkg.Prog
	if prog.Info == nil || !SimPackages[f.Pkg.Name] {
		return
	}
	// Walk function by function so the collect-then-sort suppression can
	// see the statements following each range loop.
	ast.Inspect(f.AST, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return true
		}
		inspectSameFunc(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := prog.typeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(prog, body, rng, report)
			return true
		})
		return true
	})
}

func checkMapRangeBody(prog *Program, funcBody *ast.BlockStmt, rng *ast.RangeStmt, report Reporter) {
	inspectSameFunc(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(prog, call) || i >= len(node.Lhs) {
					continue
				}
				target, ok := ast.Unparen(node.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := prog.Info.Uses[target]
				if obj == nil {
					obj = prog.Info.Defs[target]
				}
				if obj == nil || obj.Pos() == 0 {
					continue
				}
				if obj.Pos() > rng.Pos() && obj.Pos() < rng.End() {
					continue // loop-local slice: order cannot escape
				}
				if sortedAfter(prog, funcBody, obj, rng.End()) {
					continue // collect-then-sort idiom
				}
				report(node.Pos(),
					"append to %s inside range over a map: iteration order is random, so the slice order is nondeterministic — sort it afterwards or iterate sorted keys",
					target.Name)
			}
		case *ast.CallExpr:
			if desc := orderSensitiveSink(prog, node); desc != "" {
				report(node.Pos(),
					"%s inside range over a map: iteration order is random, so the output order is nondeterministic — iterate sorted keys",
					desc)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(prog *Program, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := prog.Info.Uses[id]
	if obj == nil {
		return true // unresolved: syntactic match is close enough
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// orderSensitiveSink classifies a call inside a map-range body as an
// order-sensitive write: fmt.Fprint*, writer/encoder methods, or a
// Merge call (shard-order contract).
func orderSensitiveSink(prog *Program, call *ast.CallExpr) string {
	fn := prog.calleeFunc(call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if funcPackagePath(fn) == "fmt" && namedReceiverType(fn) == nil {
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name
		}
		return ""
	}
	if namedReceiverType(fn) == nil {
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return calleeLabel(fn)
	case "Merge":
		return calleeLabel(fn) + " (merge-reduce must fold in shard order)"
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call after pos within the function body — the collect-then-sort idiom
// that makes a map-ordered append deterministic again.
func sortedAfter(prog *Program, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	inspectSameFunc(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := prog.calleeFunc(call)
		if fn == nil || namedReceiverType(fn) != nil {
			return true
		}
		pkg := funcPackagePath(fn)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && prog.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
