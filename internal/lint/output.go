package lint

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable result of one 3golvet run, consumed by
// check.sh (CI artifact + ratchet gate) and scripts/bench.sh
// (vet_seconds in BENCH_fleet.json).
type Report struct {
	Tool           string    `json:"tool"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	Packages       int       `json:"packages"`
	Fresh          []Finding `json:"fresh"`
	Baselined      []Finding `json:"baselined"`
	// StaleBaseline lists frozen debt that no longer exists; the run
	// stays green, and -writebaseline shrinks the committed file.
	StaleBaseline []BaselineEntry `json:"stale_baseline"`
	// Fixed lists files rewritten by -fix in this run.
	Fixed []string `json:"fixed,omitempty"`
}

// Finding is one diagnostic in report form.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// NewFinding converts a Diagnostic for serialization.
func NewFinding(d Diagnostic) Finding {
	return Finding{
		File:     d.Position.Filename,
		Line:     d.Position.Line,
		Column:   d.Position.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// Findings converts a diagnostic slice, returning an empty (non-nil)
// slice so JSON renders [] rather than null.
func Findings(diags []Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, NewFinding(d))
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ----- SARIF 2.1.0 (minimal subset understood by CI annotators) -----

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifText     `json:"shortDescription"`
	Properties       sarifRuleProp `json:"properties,omitempty"`
}

type sarifRuleProp struct {
	Tags []string `json:"tags,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the report as a SARIF 2.1.0 log. Fresh findings are
// level "error" (they fail the ratchet); baselined findings are level
// "note" so annotators show the frozen debt without failing review.
func (r *Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	driver := sarifDriver{Name: r.Tool, Rules: make([]sarifRule, 0, len(analyzers))}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			Properties:       sarifRuleProp{Tags: []string{"determinism", "concurrency"}},
		})
	}
	results := make([]sarifResult, 0, len(r.Fresh)+len(r.Baselined))
	add := func(f Finding, level string) {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	for _, f := range r.Fresh {
		add(f, "error")
	}
	for _, f := range r.Baselined {
		add(f, "note")
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
