package lint

import (
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Fix applies the mechanical autofixes for the given findings and
// returns the files rewritten. Two fixes are offered — both are
// behavior-preserving by construction, which is the autofix contract:
//
//   - locksafe: insert `defer x.Unlock()` directly after the flagged
//     `x.Lock()`, but only when the function contains no manual unlock
//     of that receiver (inserting alongside a manual unlock would
//     double-unlock; those sites need a human).
//   - staleallow: delete the stale analyzer name from its
//     //3golvet:allow directive, or the whole comment when no live
//     names remain. Suppressing nothing, the directive's removal cannot
//     change program behavior or analyzer output.
//
// Findings from other analyzers are never auto-fixed: a lock held
// across I/O or a missing context parameter is an API decision, not a
// mechanical edit. Rewritten files are passed through go/format, so a
// fixed tree is always gofmt-clean.
func Fix(p *Program, diags []Diagnostic) ([]string, error) {
	byFile := make(map[string][]Diagnostic)
	for _, d := range diags {
		byFile[d.Position.Filename] = append(byFile[d.Position.Filename], d)
	}
	var changed []string
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			ds := byFile[f.Path]
			if len(ds) == 0 {
				continue
			}
			edits := append(f.deferUnlockEdits(p, ds), f.staleAllowEdits(p, ds)...)
			if len(edits) == 0 {
				continue
			}
			ok, err := applyEdits(f.Path, edits)
			if err != nil {
				return changed, err
			}
			if ok {
				changed = append(changed, f.Path)
			}
		}
	}
	sort.Strings(changed)
	return changed, nil
}

// edit replaces source bytes [start, end) with new text.
type edit struct {
	start, end int
	text       string
}

// deferUnlockEdits builds insertions for this file's locksafe findings.
func (f *File) deferUnlockEdits(p *Program, diags []Diagnostic) []edit {
	want := make(map[int]bool) // flagged lock statement offsets
	for _, d := range diags {
		if d.Analyzer == "locksafe" {
			want[d.Position.Offset] = true
		}
	}
	if len(want) == 0 {
		return nil
	}
	var edits []edit
	ast.Inspect(f.AST, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return true
		}
		inspectSameFunc(body, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok || !want[p.Fset.Position(st.Pos()).Offset] {
				return true
			}
			recv, kind, ok := lockCall(st)
			if !ok || hasManualUnlock(body, recv, kind) {
				return true
			}
			edits = append(edits, edit{
				start: p.Fset.Position(st.End()).Offset,
				end:   p.Fset.Position(st.End()).Offset,
				text:  "\ndefer " + recv + "." + unlockName(kind) + "()",
			})
			return true
		})
		return true
	})
	return edits
}

// hasManualUnlock reports whether the function body contains a
// non-deferred recv.Unlock()/recv.RUnlock() — the case where inserting a
// defer would unlock twice.
func hasManualUnlock(body *ast.BlockStmt, recv, kind string) bool {
	found := false
	inspectSameFunc(body, func(n ast.Node) bool {
		if found {
			return false
		}
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == unlockName(kind) && exprString(sel.X) == recv {
			found = true
		}
		return true
	})
	return found
}

// staleAllowEdits builds removals for this file's staleallow findings.
// One directive comment may carry several names; reported names are
// dropped, live names (and any trailing prose) are kept, and a comment
// left with no names is deleted together with its line when it stood
// alone.
func (f *File) staleAllowEdits(p *Program, diags []Diagnostic) []edit {
	reported := make(map[int]bool) // offsets of flagged directive comments
	for _, d := range diags {
		if d.Analyzer == "staleallow" {
			reported[d.Position.Offset] = true
		}
	}
	if len(reported) == 0 {
		return nil
	}
	// Group this file's allow entries by their directive comment.
	type comment struct {
		pos, end token.Pos
		entries  []*allowEntry
	}
	byPos := make(map[token.Pos]*comment)
	for _, entries := range f.allow {
		for _, e := range entries {
			c := byPos[e.pos]
			if c == nil {
				c = &comment{pos: e.pos, end: e.end}
				byPos[c.pos] = c
			}
			c.entries = append(c.entries, e)
		}
	}
	src, err := os.ReadFile(f.Path)
	if err != nil {
		return nil
	}
	var edits []edit
	for _, c := range byPos {
		start := p.Fset.Position(c.pos).Offset
		if !reported[start] {
			continue
		}
		var keep []string
		for _, e := range c.entries {
			if !staleEntry(p, e) {
				keep = append(keep, e.name)
			}
		}
		end := p.Fset.Position(c.end).Offset
		if start < 0 || end > len(src) || start >= end {
			continue
		}
		if len(keep) == 0 {
			edits = append(edits, removeComment(src, start, end))
			continue
		}
		text := string(src[start:end])
		edits = append(edits, edit{start: start, end: end,
			text: "//" + AllowDirective + " " + strings.Join(keep, " ") + directiveProse(text)})
	}
	return edits
}

// staleEntry mirrors runStaleAllow's reporting condition.
func staleEntry(p *Program, e *allowEntry) bool {
	return !e.used && e.name != "staleallow" && p.ran[e.name]
}

// directiveProse returns the trailing free text of a directive comment
// (" — reason"), i.e. everything after the last analyzer name.
func directiveProse(text string) string {
	rest := strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//")), AllowDirective)
	for {
		trimmed := strings.TrimLeft(rest, " \t")
		field := trimmed
		if i := strings.IndexAny(trimmed, " \t"); i >= 0 {
			field = trimmed[:i]
		}
		if !isAnalyzerName(field) {
			if trimmed == "" {
				return ""
			}
			return " " + trimmed
		}
		rest = trimmed[len(field):]
	}
}

// removeComment deletes src[start:end]; when the comment stands alone on
// its line, the whole line goes (indentation and newline included).
func removeComment(src []byte, start, end int) edit {
	lineStart := start
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	aloneBefore := len(strings.TrimSpace(string(src[lineStart:start]))) == 0
	lineEnd := end
	for lineEnd < len(src) && src[lineEnd] != '\n' {
		lineEnd++
	}
	aloneAfter := len(strings.TrimSpace(string(src[end:lineEnd]))) == 0
	if aloneBefore && aloneAfter {
		if lineEnd < len(src) {
			lineEnd++ // take the newline too
		}
		return edit{start: lineStart, end: lineEnd}
	}
	// Inline comment: also swallow the spaces separating it from code.
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	return edit{start: start, end: end}
}

// applyEdits rewrites path with the edits applied and the result passed
// through go/format; reports whether the file changed.
func applyEdits(path string, edits []edit) (bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	out := src
	prev := len(out) + 1
	for _, e := range edits {
		if e.start < 0 || e.end > len(out) || e.start > e.end || e.end > prev {
			continue // overlapping or out-of-range edit: skip defensively
		}
		out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
		prev = e.start
	}
	formatted, err := format.Source(out)
	if err != nil {
		// An edit produced unparsable code — leave the file untouched.
		return false, nil
	}
	if string(formatted) == string(src) {
		return false, nil
	}
	return true, os.WriteFile(path, formatted, 0o644)
}
