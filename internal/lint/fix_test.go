package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTemp writes src as a one-file package in a temp dir and returns
// the analyzed program plus the file path.
func loadTemp(t *testing.T, src string) (*Program, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := NewProgram()
	if _, err := prog.LoadDir(dir, "fixture/fixme"); err != nil {
		t.Fatal(err)
	}
	prog.TypeCheck()
	return prog, path
}

func rerun(t *testing.T, path string) []Diagnostic {
	t.Helper()
	prog := NewProgram()
	if _, err := prog.LoadDir(filepath.Dir(path), "fixture/fixme"); err != nil {
		t.Fatal(err)
	}
	prog.TypeCheck()
	return prog.Run(Analyzers())
}

func TestFixDeferUnlock(t *testing.T) {
	const src = `package fixme

import "sync"

type T struct {
	mu sync.Mutex
	n  int
}

func (t *T) Bump(grow bool) int {
	t.mu.Lock()
	if grow {
		t.n++
		return t.n
	}
	return -1
}

func (t *T) Manual(grow bool) int {
	t.mu.Lock()
	if grow {
		t.mu.Unlock()
		return 1
	}
	t.mu.Unlock()
	return 0
}
`
	prog, path := loadTemp(t, src)
	diags := prog.Run(Analyzers())
	changed, err := Fix(prog, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != path {
		t.Fatalf("changed = %v, want just %s", changed, path)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if !strings.Contains(text, "t.mu.Lock()\n\tdefer t.mu.Unlock()") {
		t.Errorf("Bump did not gain a defer unlock:\n%s", text)
	}
	if strings.Count(text, "defer t.mu.Unlock()") != 1 {
		t.Errorf("Manual (manual-unlock function) must not be edited:\n%s", text)
	}
	// Only Manual's finding may survive: it has manual unlocks, which the
	// autofix deliberately refuses to touch.
	var locksafe []Diagnostic
	for _, d := range rerun(t, path) {
		if d.Analyzer == "locksafe" {
			locksafe = append(locksafe, d)
		}
	}
	if len(locksafe) != 1 {
		t.Errorf("locksafe findings after fix = %v, want exactly the Manual one", locksafe)
	}
}

func TestFixStaleAllow(t *testing.T) {
	const src = `package fixme

import "time"

func Now() time.Time {
	return time.Now() //3golvet:allow wallclock — real time intended
}

func Quiet() int {
	return 1 //3golvet:allow randsource — stale
}

func Also() int {
	//3golvet:allow locksafe — stale standalone
	return 2
}

func Mixed() time.Time {
	return time.Now() //3golvet:allow wallclock locksafe — one live, one stale
}
`
	prog, path := loadTemp(t, src)
	diags := prog.Run(Analyzers())
	stale := 0
	for _, d := range diags {
		if d.Analyzer == "staleallow" {
			stale++
		}
	}
	if stale != 3 {
		t.Fatalf("staleallow findings = %d, want 3 (randsource, locksafe standalone, locksafe in mixed)\n%v", stale, diags)
	}
	if _, err := Fix(prog, diags); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if strings.Contains(text, "randsource") || strings.Contains(text, "locksafe") {
		t.Errorf("stale directives survived the fix:\n%s", text)
	}
	if !strings.Contains(text, "return 1\n") {
		t.Errorf("code next to an inline stale directive was damaged:\n%s", text)
	}
	if !strings.Contains(text, "//3golvet:allow wallclock — real time intended") {
		t.Errorf("live directive was removed:\n%s", text)
	}
	if !strings.Contains(text, "//3golvet:allow wallclock — one live, one stale") {
		t.Errorf("mixed directive did not keep its live name and prose:\n%s", text)
	}
	for _, d := range rerun(t, path) {
		if d.Analyzer == "staleallow" {
			t.Errorf("staleallow finding survived the fix: %v", d)
		}
		if d.Analyzer == "wallclock" {
			t.Errorf("wallclock suppression was lost by the fix: %v", d)
		}
	}
}
