package lint

import (
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the .golden files under testdata")

// goldenFixtures lists the fixture packages under testdata/src. Each is
// loaded under import path "fixture/<name>" (after its deps) and its
// diagnostics are compared line-for-line against <dir>/expected.golden.
var goldenFixtures = []struct {
	name string
	deps []string // fixture packages loaded first, resolvable by import
}{
	{name: "simwall"},
	{name: "obswall"},
	{name: "eventlogwall"},
	{name: "realwall"},
	{name: "randglobal"},
	{name: "locks"},
	{name: "droppederr", deps: []string{"errpkg"}},
	{name: "clean"},
	{name: "fleetrng"},
	{name: "faultwall"},
	{name: "lockio"},
	{name: "ctxprop"},
	{name: "maporder"},
	{name: "goroleak"},
	{name: "staleallow"},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenFixtures {
		t.Run(tc.name, func(t *testing.T) {
			prog := NewProgram()
			for _, dep := range append(tc.deps, tc.name) {
				dir := filepath.Join("testdata", "src", dep)
				if _, err := prog.LoadDir(dir, "fixture/"+dep); err != nil {
					t.Fatalf("LoadDir(%s): %v", dir, err)
				}
			}
			prog.TypeCheck()
			var lines []string
			for _, d := range prog.Run(Analyzers()) {
				// Deps are loaded too, but only the fixture's own file
				// is compared against its golden.
				if filepath.Base(filepath.Dir(d.Position.Filename)) != tc.name {
					continue
				}
				d.Position.Filename = filepath.Base(d.Position.Filename)
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}

			goldenPath := filepath.Join("testdata", "src", tc.name, "expected.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSuppressionScope pins the directive semantics: an allow suppresses
// on its own line and the line below, and only for the named analyzer.
func TestSuppressionScope(t *testing.T) {
	f := &File{allow: map[int][]*allowEntry{
		10: {{name: "wallclock"}},
		20: {{name: "wallclock"}, {name: "randsource"}},
	}}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"wallclock", 10, true},  // same line
		{"wallclock", 11, true},  // line below a directive
		{"wallclock", 12, false}, // two lines below: out of scope
		{"wallclock", 9, false},  // directive does not reach upward
		{"randsource", 10, false},
		{"randsource", 20, true}, // multi-analyzer directive
		{"locksafe", 21, false},
	}
	for _, c := range cases {
		if got := f.Allowed(c.analyzer, c.line); got != c.want {
			t.Errorf("Allowed(%q, %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

// TestVetCommand runs the actual cmd/3golvet binary against fixture
// directories and asserts the documented exit statuses: 1 when findings
// survive, 0 on a clean tree.
func TestVetCommand(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "threegol/cmd/3golvet"}, args...)...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("go run 3golvet %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run("./testdata/src/locks")
	if code != 1 {
		t.Fatalf("exit code on violating fixture = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[locksafe]") {
		t.Errorf("output missing [locksafe] finding:\n%s", out)
	}

	out, code = run("./testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit code on clean fixture = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean fixture produced output:\n%s", out)
	}

	// Ratchet flow: freeze the violating fixture's findings, then the
	// same run turns green and the JSON artifact shows them as baselined.
	tmp := t.TempDir()
	base := filepath.Join(tmp, "baseline.json")
	out, code = run("-baseline", base, "-writebaseline", "./testdata/src/locks")
	if code != 0 {
		t.Fatalf("-writebaseline exit = %d, want 0\n%s", code, out)
	}
	artifact := filepath.Join(tmp, "vet-report.json")
	out, code = run("-baseline", base, "-json", artifact, "./testdata/src/locks")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0 (debt is frozen)\n%s", code, out)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not a Report: %v\n%s", err, data)
	}
	if len(rep.Fresh) != 0 || len(rep.Baselined) == 0 {
		t.Errorf("artifact: %d fresh, %d baselined; want 0 fresh and the frozen locksafe debt",
			len(rep.Fresh), len(rep.Baselined))
	}
}
