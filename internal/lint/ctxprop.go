package lint

import (
	"go/ast"
	"go/types"
)

// CtxPackages names the data-plane packages (by package clause name)
// whose exported I/O surfaces must accept and thread context.Context:
// the end-to-end X-3gol-Trace propagation (and cancellation) of the
// flight recorder rides the context, so a ctx-less I/O helper silently
// breaks tracing for everything above it.
var CtxPackages = map[string]bool{
	"scheduler":   true,
	"transfer":    true,
	"proxy":       true,
	"upload":      true,
	"permit":      true,
	"permitplane": true,
}

// CtxProp flags exported functions in the data-plane packages that
// perform network/file I/O (directly or through their callees) without
// accepting a context.Context — and functions that accept one but never
// use it, which breaks the chain just as surely. Functions taking a
// *http.Request (or named ServeHTTP) are exempt: their context rides
// the request.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc:  "flags exported data-plane I/O functions that do not accept and thread context.Context",
	Run:  runCtxProp,
}

func runCtxProp(f *File, report Reporter) {
	prog := f.Pkg.Prog
	if prog.Info == nil || !CtxPackages[f.Pkg.Name] {
		return
	}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() || fd.Name.Name == "ServeHTTP" {
			continue
		}
		obj, ok := prog.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		if named := namedReceiverType(obj); named != nil && !named.Obj().Exported() {
			continue // methods of unexported types are not API surface
		}
		ctxParam, reqParam := contextParams(prog, fd)
		if reqParam {
			continue
		}
		if ctxParam != nil {
			if !paramUsed(prog, fd.Body, ctxParam) {
				report(fd.Name.Pos(),
					"exported %s accepts a context.Context but never uses it: thread it into the I/O calls so traces and cancellation propagate",
					fd.Name.Name)
			}
			continue
		}
		if !prog.ioFacts[obj].net {
			continue
		}
		report(fd.Name.Pos(),
			"exported %s performs network/file I/O but takes no context.Context: accept one so X-3gol-Trace propagation and cancellation reach the I/O",
			fd.Name.Name)
	}
}

// contextParams scans a function's parameters for a context.Context (the
// object is returned so usage can be checked) and for a *http.Request.
func contextParams(prog *Program, fd *ast.FuncDecl) (ctx types.Object, httpReq bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		t := prog.typeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			for _, name := range field.Names {
				if obj := prog.Info.Defs[name]; obj != nil {
					ctx = obj
				}
			}
			if len(field.Names) == 0 {
				// Unnamed ctx param: present but unusable — report as
				// unthreaded via a sentinel that can never be "used".
				ctx = types.NewParam(field.Type.Pos(), nil, "_", t)
			}
		}
		if isHTTPRequestPtr(t) {
			httpReq = true
		}
	}
	return ctx, httpReq
}

// paramUsed reports whether the parameter object is referenced anywhere
// in the body (including inside nested function literals — capturing the
// context counts as threading it).
func paramUsed(prog *Program, body *ast.BlockStmt, param types.Object) bool {
	if param.Name() == "_" {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && prog.Info.Uses[id] == param {
			used = true
		}
		return true
	})
	return used
}
