package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
)

// TypeCheck runs go/types over every loaded package, in dependency order,
// and records the results on Program.Info / Package.Types. It never fails
// the analysis: packages that do not fully type-check (fixtures with
// deliberate mistakes, partial loads) get partial type information, and
// the type-aware analyzers degrade to silence where resolution is
// missing. Type errors are collected on Program.TypeErrors for tests.
//
// Imports are resolved three ways, in order:
//
//  1. packages loaded into this Program (the repo's own packages and
//     test fixtures), by import path;
//  2. compiler export data located via `go list -deps -export` — one
//     subprocess for the whole program, reading the build cache that
//     check.sh has already warmed with `go build ./...`;
//  3. the go/importer source importer, compiling the dependency from
//     source — slow, but keeps 3golvet working on a cold cache or
//     without a go binary on PATH for `go list`.
//
// Everything stays offline: both fallbacks read only GOROOT and the
// local build cache.
func (p *Program) TypeCheck() {
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	imp := &programImporter{prog: p, exports: resolveExports(p.externalImports())}
	conf := types.Config{
		Importer:         imp,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	for _, pkg := range p.topoOrder() {
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			files = append(files, f.AST)
		}
		tp, _ := conf.Check(pkg.ImportPath, p.Fset, files, p.Info)
		pkg.Types = tp // non-nil even on errors (partial package)
	}
	p.buildIOFacts()
}

// externalImports collects every import path referenced by loaded files
// that is not itself a loaded package.
func (p *Program) externalImports() []string {
	seen := make(map[string]bool)
	var out []string
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, spec := range f.AST.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if path == "C" || seen[path] || p.byPath[path] != nil {
					continue
				}
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoOrder sorts loaded packages so every package follows the loaded
// packages it imports (cycles cannot occur in valid Go; on a malformed
// input the residue is appended in load order).
func (p *Program) topoOrder() []*Package {
	deps := make(map[*Package][]*Package, len(p.Packages))
	for _, pkg := range p.Packages {
		seen := make(map[*Package]bool)
		for _, f := range pkg.Files {
			for _, spec := range f.AST.Imports {
				if d := p.byPath[strings.Trim(spec.Path.Value, `"`)]; d != nil && d != pkg && !seen[d] {
					seen[d] = true
					deps[pkg] = append(deps[pkg], d)
				}
			}
		}
	}
	var order []*Package
	done := make(map[*Package]bool)
	var visit func(*Package, map[*Package]bool)
	visit = func(pkg *Package, path map[*Package]bool) {
		if done[pkg] || path[pkg] {
			return
		}
		path[pkg] = true
		for _, d := range deps[pkg] {
			visit(d, path)
		}
		delete(path, pkg)
		done[pkg] = true
		order = append(order, pkg)
	}
	for _, pkg := range p.Packages {
		visit(pkg, make(map[*Package]bool))
	}
	return order
}

// resolveExports maps import paths to compiler export-data files via one
// `go list -deps -export` invocation. A missing go binary, a failed
// listing, or an unbuildable path simply leaves entries absent and the
// source-importer fallback takes over per path.
func resolveExports(paths []string) map[string]string {
	exports := make(map[string]string)
	if len(paths) == 0 {
		return exports
	}
	args := append([]string{"list", "-deps", "-export",
		"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}"}, paths...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return exports
	}
	for _, line := range strings.Split(string(out), "\n") {
		if i := strings.IndexByte(line, '='); i > 0 {
			exports[line[:i]] = line[i+1:]
		}
	}
	return exports
}

// srcImporter is the shared source-importer fallback. It type-checks
// stdlib packages from GOROOT source, which is expensive, so one
// instance (with its internal cache) is shared by every Program in the
// process — golden tests construct many Programs.
var (
	srcImporterOnce sync.Once
	srcImporter     types.ImporterFrom
	srcImporterMu   sync.Mutex
)

func sharedSourceImporter() types.ImporterFrom {
	srcImporterOnce.Do(func() {
		// A dedicated FileSet keeps stdlib positions out of program
		// diagnostics; go/types does not require a shared FileSet
		// across imported packages.
		srcImporter = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	})
	return srcImporter
}

// programImporter resolves imports for Program.TypeCheck.
type programImporter struct {
	prog    *Program
	exports map[string]string // import path → export data file
	gcOnce  sync.Once
	gc      types.ImporterFrom
	cache   map[string]*types.Package
}

func (pi *programImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *programImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := pi.prog.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unchecked dependency %q", path)
		}
		return pkg.Types, nil
	}
	if pi.cache == nil {
		pi.cache = make(map[string]*types.Package)
	}
	if tp, ok := pi.cache[path]; ok {
		return tp, nil
	}
	if _, ok := pi.exports[path]; ok {
		pi.gcOnce.Do(func() {
			pi.gc = importer.ForCompiler(token.NewFileSet(), "gc", pi.lookup).(types.ImporterFrom)
		})
		if tp, err := pi.gc.ImportFrom(path, dir, mode); err == nil {
			pi.cache[path] = tp
			return tp, nil
		}
	}
	srcImporterMu.Lock()
	defer srcImporterMu.Unlock()
	tp, err := sharedSourceImporter().ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	pi.cache[path] = tp
	return tp, nil
}

func (pi *programImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := pi.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// ----- type lookup helpers shared by the type-aware analyzers -----

// typeOf returns the type of e, or nil when type information is missing.
func (p *Program) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// calleeFunc resolves the function or method named by a call expression,
// through plain identifiers, selector expressions and parentheses.
// Calls through function values, interfaces with no static callee, or
// missing type info yield nil.
func (p *Program) calleeFunc(call *ast.CallExpr) *types.Func {
	if p.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPackagePath returns the import path of the package declaring fn
// ("" for builtins or missing info).
func funcPackagePath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request (handlers get
// their context from the request, so they are exempt from ctxprop).
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// namedReceiverType returns the defined type of fn's receiver, looking
// through a pointer ("" when fn is not a method).
func namedReceiverType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// receiverIs reports whether fn is a method on pkgPath.typeName
// (through a pointer receiver).
func receiverIs(fn *types.Func, pkgPath, typeName string) bool {
	named := namedReceiverType(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
