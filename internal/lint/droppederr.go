package lint

import (
	"go/ast"
	"strings"
)

// DroppedErr flags bare statements that call a function whose last result
// is an error, silently discarding it. Without a type checker the
// analyzer proves "returns error" three ways, all conservative:
//
//   - f(...)     — f is a package-level function of the same package;
//   - pkg.F(...) — pkg is another package loaded in the same program
//     (the repo's own internal packages when run over ./...);
//   - x.M(...)   — every method named M declared anywhere in the loaded
//     program has error as its last result, so the call drops an error
//     whatever x's type is.
//
// Method names that collide with void methods of the stdlib sync
// primitives (sync.WaitGroup.Wait, sync.Cond.Wait, ...) are exempt from
// the third rule: those receivers are invisible to the loaded program, so
// name matching alone would misfire on them.
//
// Assign to _ explicitly (or handle the error) to acknowledge a discard.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flags call statements whose error result is silently discarded",
	Run:  runDroppedErr,
}

// syncMethodNames are void on the stdlib sync primitives; name-based
// matching must never flag them.
var syncMethodNames = map[string]bool{
	"Wait": true, "Done": true, "Add": true,
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"Broadcast": true, "Signal": true, "Store": true, "Swap": true,
}

func runDroppedErr(f *File, report Reporter) {
	// Map local import aliases to packages loaded in this program.
	imports := make(map[string]*Package)
	for _, spec := range f.AST.Imports {
		pkg := f.Pkg.Prog.byPath[strings.Trim(spec.Path.Value, `"`)]
		if pkg == nil {
			continue
		}
		alias := pkg.Name
		if spec.Name != nil {
			alias = spec.Name.Name
		}
		imports[alias] = pkg
	}

	ast.Inspect(f.AST, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			// Same-package function call; skip identifiers resolved to
			// local (shadowing) declarations that are not FuncDecls.
			if fun.Obj != nil {
				if _, isFunc := fun.Obj.Decl.(*ast.FuncDecl); !isFunc {
					return true
				}
			}
			if f.Pkg.funcErr[fun.Name] {
				report(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", fun.Name)
			}
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Obj == nil {
				if pkg, isPkg := imports[id.Name]; isPkg {
					if pkg.funcErr[fun.Sel.Name] {
						report(call.Pos(), "%s.%s returns an error that is discarded; handle it or assign to _ explicitly",
							id.Name, fun.Sel.Name)
					}
					return true
				}
			}
			if f.Pkg.Prog.methodErr[fun.Sel.Name] && !syncMethodNames[fun.Sel.Name] {
				report(call.Pos(), "%s.%s returns an error that is discarded; handle it or assign to _ explicitly",
					exprString(fun.X), fun.Sel.Name)
			}
		}
		return true
	})
}
