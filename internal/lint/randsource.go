package lint

import "go/ast"

// globalRandFuncs are the math/rand (and math/rand/v2) top-level
// functions that draw from the global, non-injectable source. rand.New,
// rand.NewSource and rand.NewZipf are constructors and stay legal.
var globalRandFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "ExpFloat64": true, "NormFloat64": true, "Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// RandSource flags uses of the global math/rand source. Every simulation
// draws randomness from a *rand.Rand seeded by experiment config so runs
// replay identically; the global source defeats that and is additionally
// a contention point under -race workloads.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "flags global math/rand top-level functions; use an injected *rand.Rand seeded from config",
	Run:  runRandSource,
}

func runRandSource(f *File, report Reporter) {
	aliases := make(map[string]bool, 2)
	for _, path := range [2]string{"math/rand", "math/rand/v2"} {
		if a := importAlias(f.AST, path); a != "" {
			aliases[a] = true
		}
	}
	if len(aliases) == 0 {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !aliases[id.Name] || id.Obj != nil {
			return true
		}
		if globalRandFuncs[sel.Sel.Name] {
			report(call.Pos(), "global rand.%s draws from the shared math/rand source: use an injected *rand.Rand seeded from config",
				sel.Sel.Name)
		}
		return true
	})
}
