// Fixture: wall-clock calls outside the simulation packages still get
// flagged, with the softer inject-or-annotate message.
package realwall

import "time"

func bad() time.Time {
	return time.Now()
}

func annotated() {
	time.Sleep(time.Second) //3golvet:allow wallclock — real backoff against a live peer
}
