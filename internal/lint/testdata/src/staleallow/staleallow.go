// Fixture: allow directives that still earn their keep versus ones that
// suppress nothing.
package staleallow

import "time"

// Uptime's directive is used (wallclock fires here without it): clean.
func Uptime() time.Time {
	return time.Now() //3golvet:allow wallclock — fixture: real time intended
}

// Quiet's directive suppresses nothing: flagged by staleallow.
func Quiet() int {
	x := 1 //3golvet:allow randsource — fixture: stale on purpose
	return x
}

// partial directive: wallclock is used, locksafe is stale — only the
// stale name is reported.
func Mixed() time.Time {
	return time.Now() //3golvet:allow wallclock locksafe — fixture: one live, one stale
}
