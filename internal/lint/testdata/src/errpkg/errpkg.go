// Fixture dependency: loaded under import path "fixture/errpkg" so the
// droppederr fixture can exercise the cross-package rule.
package errpkg

import "errors"

// Fallible returns an error.
func Fallible() error { return errors.New("boom") }

// Infallible does not.
func Infallible() {}
