// Fixture: wall-clock calls inside the flight-recorder package (the
// package clause says eventlog, which is on the SimPackages list — a
// wall-clock timestamp or ID would break byte-identical event streams).
package eventlog

import "time"

type event struct{ t time.Time }

func stamp() event {
	return event{t: time.Now()}
}

func (e event) age() time.Duration {
	return time.Since(e.t)
}

func sinceStart() time.Time {
	return time.Now() //3golvet:allow wallclock — anchoring the injected source is intentional
}
