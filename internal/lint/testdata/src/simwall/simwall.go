// Fixture: wall-clock calls inside a simulation package (the package
// clause says linksim, which is on the SimPackages list).
package linksim

import "time"

func bad() time.Duration {
	start := time.Now()
	time.Sleep(5 * time.Millisecond)
	return time.Since(start)
}

func suppressedSameLine() time.Time {
	return time.Now() //3golvet:allow wallclock
}

func suppressedLineAbove() {
	//3golvet:allow wallclock — reason prose after the name is ignored
	time.Sleep(time.Millisecond)
}

func wrongAnalyzerName() time.Time {
	return time.Now() //3golvet:allow randsource
}

func shadowedTimeIsFine() int {
	time := counter{}
	time.Now()
	return time.n
}

type counter struct{ n int }

func (c counter) Now() {}
