// Fixture: the fleet engine's per-shard RNG discipline. The package
// clause says fleet, which is on the SimPackages list: wall-clock reads
// are banned, and randomness must come from injected *rand.Rand streams.
// The sanctioned stream construction rand.New(rand.NewSource(seed ^
// shardID)) passes; drawing from the global math/rand source does not.
package fleet

import (
	"math/rand"
	"time"
)

// shardRNG is the engine's sanctioned per-shard stream derivation:
// constructors are pure and feed an injected generator, so randsource
// accepts them.
func shardRNG(seed int64, shard int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(shard)))
}

func simulateOK(seed int64, shard int) float64 {
	rng := shardRNG(seed, shard)
	return rng.Float64() + rng.NormFloat64()
}

// badGlobalDraw leaks shared-source nondeterminism across shards.
func badGlobalDraw() float64 {
	return rand.Float64()
}

// badShuffle too — every top-level math/rand draw shares one source.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// badWallclock: fleet is a simulation package; virtual time only.
func badWallclock() time.Time {
	return time.Now()
}
