// Fixture: global math/rand draws versus an injected *rand.Rand.
package randglobal

import "math/rand"

func bad() float64 {
	rand.Shuffle(3, func(i, j int) {})
	return rand.Float64() + float64(rand.Intn(10))
}

func injectedIsFine(rng *rand.Rand) float64 {
	return rng.Float64()
}

func constructorsAreFine() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func suppressed() int {
	//3golvet:allow randsource
	return rand.Int()
}
