// Fixture: the fault-injection package's determinism discipline. The
// package clause says fault, which is on the SimPackages list: plans are
// compiled on a virtual float64-seconds timeline and schedules must draw
// from per-target seeded streams, so wall-clock reads and global
// math/rand draws are both banned. Injected-clock gating of a live Conn
// passes; "jittering" a schedule from the shared source does not.
package fault

import (
	"math/rand"
	"time"
)

// compileOK is the sanctioned shape: a per-target stream derived from a
// mixed seed drives every draw.
func compileOK(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// badJitter leaks shared-source nondeterminism into the fault plan.
func badJitter(gap float64) float64 {
	return gap * rand.Float64()
}

// badStamp: fault plans live on a virtual timeline; no wall clock.
func badStamp() time.Time {
	return time.Now()
}

// badStall: injected clocks sleep, the package itself never does.
func badStall() {
	time.Sleep(time.Second)
}
