// Fixture: go statements with and without a join or cancellation path.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

// Fire spawns with no lifecycle at all: flagged.
func Fire() {
	go func() {
		work()
	}()
}

// NamedLeak spawns a declared function with no lifecycle: flagged.
func NamedLeak() {
	go work()
}

// Waited joins through a WaitGroup.
func Waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Signalled closes a done channel.
func Signalled() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// Cancellable watches its context.
func Cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			}
		}
	}()
}

// WorkerArg hands the goroutine a channel to live on.
func WorkerArg(jobs chan int) {
	go drain(jobs)
}

func drain(jobs chan int) {
	for range jobs {
	}
}

// Pinned is suppressed: deliberately process-lifetime.
func Pinned() {
	go work() //3golvet:allow goroleak — fixture: process-lifetime worker
}
