// Fixture: map iteration feeding order-sensitive sinks. The package
// clause says "fleet" because maporder scopes to simulation packages.
package fleet

import (
	"fmt"
	"io"
	"sort"
)

// Keys appends in map order with no later sort: flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the idiom stays legal.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes through an encoder in map order: flagged.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Total folds order-insensitively into a scalar: clean.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Counter is a merge-reduce accumulator.
type Counter struct{ n int }

// Merge folds src into c.
func (c *Counter) Merge(src *Counter) { c.n += src.n }

// Fold merges in map order: flagged (shard-order contract).
func Fold(dst *Counter, m map[string]*Counter) {
	for _, src := range m {
		dst.Merge(src)
	}
}

// PerEntry appends only to a slice scoped inside the loop body: clean.
func PerEntry(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		for _, v := range vs {
			tmp = append(tmp, v)
		}
		total += len(tmp)
	}
	return total
}

// Quick is suppressed: the caller sorts.
func Quick(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //3golvet:allow maporder — fixture: caller sorts the result
	}
	return out
}
