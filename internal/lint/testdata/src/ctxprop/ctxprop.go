// Fixture: context propagation through an exported data-plane surface.
// The package clause says "transfer" because ctxprop scopes by package
// name to the repo's data-plane packages.
package transfer

import (
	"context"
	"net/http"
	"os"
)

// Fetch performs a round trip with no context: flagged.
func Fetch(url string) (*http.Response, error) {
	return http.Get(url)
}

// Read reaches I/O through a helper; the transitive fact still flags it.
func Read(path string) ([]byte, error) {
	return readFile(path)
}

func readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Unused accepts a context but never threads it: flagged.
func Unused(ctx context.Context, path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Good threads its context into the request.
func Good(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// Forward is handler-shaped: its context rides the request.
func Forward(w http.ResponseWriter, r *http.Request) {
	resp, err := http.DefaultClient.Do(r.Clone(r.Context()))
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Weigh does no I/O: no context needed.
func Weigh(sizes []int64) int64 {
	var total int64
	for _, s := range sizes {
		total += s
	}
	return total
}

// unexportedFetch is not API surface.
func unexportedFetch(url string) (*http.Response, error) {
	return http.Get(url)
}

// Legacy is suppressed: the wire protocol freezes its shape.
//
//3golvet:allow ctxprop — fixture: protocol-frozen helper
func Legacy(path string) ([]byte, error) {
	return os.ReadFile(path)
}
