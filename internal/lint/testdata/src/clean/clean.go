// Fixture: a file with no findings, used to assert the zero-exit path.
package clean

import "fmt"

// Greet formats a greeting.
func Greet(name string) string {
	return fmt.Sprintf("hello, %s", name)
}
