// Fixture: network/file I/O and channel blocking while a mutex is held.
package lockio

import (
	"net"
	"os"
	"sync"
)

type server struct {
	mu sync.Mutex
	ch chan int
}

// deferHeld holds the lock to function end, so the dial is under it.
func (s *server) deferHeld(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// manualRegion: I/O before the unlock is flagged, after it is fine.
func (s *server) manualRegion(path string) {
	s.mu.Lock()
	early, _ := os.Stat(path)
	s.mu.Unlock()
	late, _ := os.Stat(path)
	_, _ = early, late
}

// fetch wraps the dial; callers one level up are still caught.
func fetch(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

func (s *server) viaWrapper(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := fetch(addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// channelHeld blocks on channel operations under the lock.
func (s *server) channelHeld(v int) {
	s.mu.Lock()
	s.ch <- v
	<-s.ch
	s.mu.Unlock()
}

// condWait is the one blocking wait that must hold the mutex.
func condWait(c *sync.Cond) {
	c.L.Lock()
	c.Wait()
	c.L.Unlock()
}

// spawns does not block: the goroutine runs without the lock.
func (s *server) spawns(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go pump(addr, s.ch)
}

func pump(addr string, ch chan int) {
	conn, err := fetch(addr)
	if err == nil {
		conn.Close()
	}
	ch <- 1
}

// suppressed carries an explicit annotation.
func (s *server) suppressed(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, _ := net.Dial("tcp", addr) //3golvet:allow lockio — fixture: intentional dial under lock
	_ = conn
}

// afterUnlockViaDefer: with no deferred unlock and no manual unlock the
// region runs to the body end, but a lock released before the I/O is
// clean.
func (s *server) released(path string) {
	s.mu.Lock()
	s.mu.Unlock()
	data, _ := os.ReadFile(path)
	_ = data
}
