// Fixture: wall-clock calls inside the metrics/tracing package (the
// package clause says obs, which is on the SimPackages list — metric
// timestamps would break bit-identical fleet dumps).
package obs

import "time"

type span struct{ start time.Time }

func startSpan() span {
	return span{start: time.Now()}
}

func (s span) end() time.Duration {
	return time.Since(s.start)
}

func throttle() {
	time.Sleep(10 * time.Millisecond)
}

func suppressed() time.Time {
	return time.Now() //3golvet:allow wallclock
}
