// Fixture: bare call statements discarding error results.
package droppederr

import (
	"errors"
	"sync"

	"fixture/errpkg"
)

func local() error { return errors.New("boom") }

func void() {}

type thing struct{}

// Flush is the only method of this name in the program, so a bare call
// provably drops its error.
func (thing) Flush() error { return nil }

func bad() {
	local()
	errpkg.Fallible()
	var t thing
	t.Flush()
}

func finePatterns() error {
	void()
	errpkg.Infallible()
	if err := local(); err != nil {
		return err
	}
	_ = local()
	var wg sync.WaitGroup
	wg.Wait() // sync deny-list: never flagged despite any Wait method elsewhere
	return nil
}

func suppressed() {
	local() //3golvet:allow droppederr
}

func shadowedLocalIsFine() {
	local := func() {}
	local()
}
