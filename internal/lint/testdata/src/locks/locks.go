// Fixture: mutex discipline in functions with multiple return paths.
package locks

import "sync"

type box struct {
	mu sync.RWMutex
	n  int
}

func (b *box) bad(flip bool) int {
	b.mu.Lock()
	if flip {
		b.mu.Unlock()
		return -1
	}
	b.mu.Unlock()
	return b.n
}

func (b *box) good(flip bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if flip {
		return -1
	}
	return b.n
}

func (b *box) badRead(flip bool) int {
	b.mu.RLock()
	if flip {
		b.mu.RUnlock()
		return -1
	}
	b.mu.RUnlock()
	return b.n
}

func (b *box) singleExitIsFine() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) suppressed(flip bool) int {
	b.mu.Lock() //3golvet:allow locksafe — releases early before a callback
	if flip {
		b.mu.Unlock()
		return -1
	}
	b.mu.Unlock()
	return b.n
}

func (b *box) wrongDeferKind(flip bool) int {
	b.mu.RLock()
	defer b.mu.Unlock()
	if flip {
		return -1
	}
	return b.n
}

func (b *box) insideClosure() func(bool) int {
	return func(flip bool) int {
		b.mu.Lock()
		if flip {
			b.mu.Unlock()
			return -1
		}
		b.mu.Unlock()
		return b.n
	}
}
