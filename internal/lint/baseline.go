package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline freezes the findings that existed when the ratchet was
// adopted. The contract is a one-way ratchet: a finding matching a
// baseline entry is tolerated (but stays visible in reports), a finding
// NOT in the baseline fails the run, and a baseline entry with no
// matching finding means the debt shrank — the run stays green and the
// caller is invited to rewrite the baseline smaller. Entries never grow
// implicitly: only -writebaseline regenerates the file.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies frozen findings by file, analyzer and exact
// message; Count is the number of identical findings frozen (multiset
// semantics — line numbers deliberately do not participate, so unrelated
// edits shifting a finding up or down do not break the ratchet).
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.File + "\x00" + e.Analyzer + "\x00" + e.Message
}

func diagKey(d Diagnostic) string {
	return d.Position.Filename + "\x00" + d.Analyzer + "\x00" + d.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline (every finding is new), not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// NewBaseline freezes the given findings into a baseline, merging
// identical (file, analyzer, message) findings into counted entries
// sorted for a stable committed file.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[string]*BaselineEntry)
	var order []string
	for _, d := range diags {
		k := diagKey(d)
		if e := counts[k]; e != nil {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{File: d.Position.Filename, Analyzer: d.Analyzer, Message: d.Message, Count: 1}
		order = append(order, k)
	}
	sort.Strings(order)
	b := &Baseline{Version: 1, Entries: []BaselineEntry{}}
	for _, k := range order {
		b.Entries = append(b.Entries, *counts[k])
	}
	return b
}

// Write marshals the baseline to path with a trailing newline, indented
// for reviewable diffs.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply partitions findings against the baseline: fresh findings (not
// frozen — these fail the ratchet), baselined findings (frozen debt,
// tolerated), and stale entries (frozen debt that no longer exists —
// the baseline can shrink). Matching is a multiset: an entry with
// Count 2 absorbs at most two identical findings.
func (b *Baseline) Apply(diags []Diagnostic) (fresh, baselined []Diagnostic, stale []BaselineEntry) {
	remaining := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[e.key()] += n
	}
	for _, d := range diags {
		k := diagKey(d)
		if remaining[k] > 0 {
			remaining[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Entries {
		if n := remaining[e.key()]; n > 0 {
			left := e
			left.Count = n
			stale = append(stale, left)
			remaining[e.key()] = 0
		}
	}
	return fresh, baselined, stale
}
