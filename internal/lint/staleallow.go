package lint

import "go/token"

// StaleAllow flags //3golvet:allow directives that suppressed nothing in
// this run. A stale directive is worse than noise: it documents an
// invariant violation that no longer exists, and it will silently mask
// the next real finding that lands on its line. This is an After pass —
// it needs every per-file analyzer to have finished marking the
// directives it consumed.
//
// Entries naming staleallow itself are exempt (a directive cannot prove
// its own liveness), as are entries naming analyzers that did not run in
// this invocation — a partial run must not declare everyone else's
// directives stale.
var StaleAllow = &Analyzer{
	Name:  "staleallow",
	Doc:   "flags //3golvet:allow directives that no longer suppress anything",
	After: runStaleAllow,
}

func runStaleAllow(p *Program, report func(f *File, pos token.Pos, format string, args ...any)) {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, entries := range f.allow {
				for _, e := range entries {
					if e.used || e.name == "staleallow" || !p.ran[e.name] {
						continue
					}
					report(f, e.pos,
						"stale //3golvet:allow %s: no %s finding is suppressed here — remove the directive (or run 3golvet -fix)",
						e.name, e.name)
				}
			}
		}
	}
}
