// Package lint is a stdlib-only static-analysis framework plus the
// repo-specific analyzers behind cmd/3golvet. It is built on go/parser,
// go/ast and go/types — no external modules — so it loads and runs
// offline in any environment that can build the repo. Type information
// comes from go/types with imports resolved from already-loaded
// packages, compiler export data, or the go/importer source importer
// (see TypeCheck); analyzers degrade gracefully where resolution fails.
//
// The analyzers enforce the determinism and concurrency invariants the
// trace-driven evaluation depends on:
//
//   - wallclock: no direct time.Now/time.Since/time.Sleep; simulation
//     packages must use internal/simclock or an injected clock.Clock.
//   - randsource: no global math/rand top-level functions; randomness is
//     injected as a *rand.Rand seeded from experiment config.
//   - locksafe: mu.Lock() in a function with multiple return paths must
//     be immediately followed by defer mu.Unlock().
//   - droppederr: calls whose error result is silently discarded as a
//     bare statement.
//   - lockio: a mutex held across network/file I/O or channel blocking
//     (type-resolved, with one-level call summaries so wrappers like
//     transfer.Download are caught).
//   - ctxprop: exported functions in the data-plane packages that
//     perform I/O must accept and thread a context.Context.
//   - maporder: map iteration feeding order-sensitive sinks (slice
//     appends, encoders, Merge calls) in simulation packages.
//   - goroleak: go statements with no join or cancellation path.
//   - staleallow: //3golvet:allow directives that suppress nothing.
//
// A finding at a legitimate call site is suppressed by the directive
//
//	//3golvet:allow <analyzer> [<analyzer>...]
//
// placed on the flagged line or the line immediately above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// AllowDirective is the comment prefix of a suppression, e.g.
// "//3golvet:allow wallclock".
const AllowDirective = "3golvet:allow"

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String formats the finding as "file:line: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.Analyzer, d.Message)
}

// allowEntry is one analyzer name listed on one //3golvet:allow
// directive. used is set when a finding is suppressed through it, so
// staleallow can flag directives that no longer suppress anything.
type allowEntry struct {
	name string
	pos  token.Pos // position of the directive comment
	end  token.Pos // end of the directive comment
	used bool
}

// File is one parsed, non-test source file.
type File struct {
	Path string
	AST  *ast.File
	Pkg  *Package

	allow map[int][]*allowEntry // directive line → entries allowed there
}

// Allowed reports whether a finding by the named analyzer at the given
// line is suppressed by an allow directive on that line or the one above,
// marking the directive as used.
func (f *File) Allowed(analyzer string, line int) bool {
	ok := false
	for _, l := range [2]int{line, line - 1} {
		for _, e := range f.allow[l] {
			if e.name == analyzer {
				e.used = true
				ok = true
			}
		}
	}
	return ok
}

// Package is one directory's worth of parsed files.
type Package struct {
	Name       string // package clause name
	ImportPath string
	Dir        string
	Files      []*File
	Prog       *Program
	// DepOnly marks a package loaded only to complete the dependency
	// closure (type checking, cross-package facts); its own diagnostics
	// are not reported.
	DepOnly bool
	// Types is the type-checked package (possibly partial); nil before
	// TypeCheck runs.
	Types *types.Package

	funcErr map[string]bool // package-level funcs whose last result is error
}

// Program is a set of loaded packages analyzed together. Cross-package
// facts (the dropped-error indexes, the I/O classification used by
// lockio/ctxprop/goroleak) are computed over the whole program.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// Info holds merged type information for every loaded package after
	// TypeCheck; nil when running parser-only.
	Info *types.Info
	// TypeErrors collects go/types errors (fixtures with deliberate
	// mistakes, unresolvable imports). Analysis continues regardless.
	TypeErrors []error

	byPath map[string]*Package
	// methodErr[name] is true when every method of that name declared
	// anywhere in the program has error as its last result (so a bare
	// x.name(...) statement provably drops an error regardless of x's
	// type, as far as the loaded program can tell).
	methodErr map[string]bool
	// ioFacts classifies declared functions by the blocking operations
	// their bodies perform; see ioclass.go.
	ioFacts map[*types.Func]ioFact
	// ran names the analyzers included in the current Run — staleallow
	// only judges directives for analyzers that actually executed.
	ran map[string]bool
}

// NewProgram returns an empty Program ready for LoadDir calls.
func NewProgram() *Program {
	return &Program{Fset: token.NewFileSet(), byPath: make(map[string]*Package)}
}

// Package returns the loaded package registered under importPath, or
// nil when it has not been loaded.
func (p *Program) Package(importPath string) *Package {
	return p.byPath[importPath]
}

// LoadDir parses the non-test .go files of one directory as a Package
// registered under importPath. It returns nil (and no error) when the
// directory contains no non-test Go files.
func (p *Program) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, ImportPath: importPath, Prog: p}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		astf, err := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = astf.Name.Name
		}
		pkg.Files = append(pkg.Files, &File{
			Path:  path,
			AST:   astf,
			Pkg:   pkg,
			allow: parseAllows(p.Fset, astf),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	p.Packages = append(p.Packages, pkg)
	p.byPath[importPath] = pkg
	return pkg, nil
}

// parseAllows collects //3golvet:allow directives by line.
func parseAllows(fset *token.FileSet, astf *ast.File) map[int][]*allowEntry {
	m := make(map[int][]*allowEntry)
	for _, cg := range astf.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, field := range strings.Fields(text[len(AllowDirective):]) {
				if !isAnalyzerName(field) {
					break // trailing prose ("— reason why") ends the list
				}
				m[line] = append(m[line], &allowEntry{name: field, pos: c.Pos(), end: c.End()})
			}
		}
	}
	return m
}

func isAnalyzerName(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return len(s) > 0
}

// Reporter receives findings from an analyzer run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one named check. Run inspects a single file (with
// program-wide indexes available through File.Pkg.Prog). After, when
// non-nil, runs once per program after every per-file pass has finished —
// staleallow uses it to see which directives went unused.
type Analyzer struct {
	Name  string
	Doc   string
	Run   func(f *File, report Reporter)
	After func(p *Program, report func(f *File, pos token.Pos, format string, args ...any))
}

// Analyzers returns the default suite run by cmd/3golvet.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Wallclock, RandSource, LockSafe, DroppedErr,
		LockIO, CtxProp, MapOrder, GoroLeak, StaleAllow,
	}
}

// Run executes the analyzers over every loaded file — packages in
// parallel — and returns the surviving (non-suppressed) diagnostics of
// non-DepOnly packages sorted by file then line. Program-level After
// passes run once the per-file phase has fully drained.
func (p *Program) Run(analyzers []*Analyzer) []Diagnostic {
	p.buildIndexes()
	p.ran = make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		p.ran[a.Name] = true
	}
	perPkg := make([][]Diagnostic, len(p.Packages))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(p.Packages) {
		workers = len(p.Packages)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				perPkg[idx] = p.runPackage(p.Packages[idx], analyzers)
			}
		}()
	}
	for i := range p.Packages {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	for _, a := range analyzers {
		if a.After == nil {
			continue
		}
		a := a
		a.After(p, func(f *File, pos token.Pos, format string, args ...any) {
			if f.Pkg.DepOnly {
				return
			}
			position := p.Fset.Position(pos)
			if f.Allowed(a.Name, position.Line) {
				return
			}
			diags = append(diags, Diagnostic{
				Position: position,
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// runPackage runs every per-file analyzer over one package. Suppression
// marking touches only this package's files, so packages are safe to
// analyze concurrently.
func (p *Program) runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			f, a := f, a
			a.Run(f, func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				if f.Allowed(a.Name, position.Line) {
					return
				}
				if pkg.DepOnly {
					return
				}
				diags = append(diags, Diagnostic{
					Position: position,
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
	}
	return diags
}

// buildIndexes computes the error-result indexes used by droppederr.
func (p *Program) buildIndexes() {
	p.methodErr = make(map[string]bool)
	seen := make(map[string]bool)
	for _, pkg := range p.Packages {
		pkg.funcErr = make(map[string]bool)
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				returnsErr := lastResultIsError(fd.Type)
				if fd.Recv == nil {
					if returnsErr {
						pkg.funcErr[fd.Name.Name] = true
					}
					continue
				}
				name := fd.Name.Name
				if !seen[name] {
					seen[name] = true
					p.methodErr[name] = returnsErr
				} else {
					p.methodErr[name] = p.methodErr[name] && returnsErr
				}
			}
		}
	}
}

func lastResultIsError(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// importAlias returns the local name under which path is imported in the
// file ("" when not imported, or imported blank / with a dot).
func importAlias(astf *ast.File, path string) string {
	for _, spec := range astf.Imports {
		if strings.Trim(spec.Path.Value, `"`) != path {
			continue
		}
		if spec.Name == nil {
			// Default name: last path element.
			if i := strings.LastIndex(path, "/"); i >= 0 {
				return path[i+1:]
			}
			return path
		}
		if spec.Name.Name == "_" || spec.Name.Name == "." {
			return ""
		}
		return spec.Name.Name
	}
	return ""
}

// exprString renders a receiver/selector expression for messages and for
// matching a Lock receiver against its Unlock.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	default:
		return "?"
	}
}

// inspectSameFunc walks root like ast.Inspect but does not descend into
// nested function literals, so statements are attributed to the function
// that lexically contains them.
func inspectSameFunc(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}
