package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ioFact classifies what blocking operations a declared function's own
// body performs. net records "performs network or file I/O" and is
// propagated transitively through program-local calls (a wrapper around
// a wrapper around http.Client.Do still counts). block records direct
// channel operations, sleeps and WaitGroup waits, and deliberately does
// NOT propagate: one level of summary catches wrappers without painting
// the whole call graph as blocking.
type ioFact struct {
	net   bool
	block bool
	// join records that the body participates in goroutine lifecycle
	// management (WaitGroup use, channel operations, context use) — the
	// goroleak evidence that a spawned function can be joined or
	// cancelled.
	join bool
}

// netPrefixNames match package-level net functions that hit the network
// (dialing, listening, DNS resolution).
var netPrefixNames = []string{"Dial", "Listen", "Resolve", "Lookup", "FileConn", "FilePacketConn", "FileListener"}

// connMethodNames are the blocking methods of net connection/listener
// types.
var connMethodNames = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "AcceptTCP": true, "AcceptUnix": true,
	"ReadFrom": true, "WriteTo": true, "ReadFromUDP": true, "WriteToUDP": true,
	"ReadMsgUDP": true, "WriteMsgUDP": true,
}

// osIOFuncs are package-level os functions that hit the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true, "MkdirAll": true,
	"Stat": true, "Lstat": true, "Truncate": true, "Symlink": true, "Link": true,
}

// httpClientFuncs are package-level net/http helpers that perform a
// round trip.
var httpClientFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
}

// ioCopyFuncs are io helpers that block until an arbitrary reader or
// writer drains — under a lock they are exactly the smell lockio hunts.
var ioCopyFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true, "ReadFull": true,
	"ReadAtLeast": true,
}

// classifyCall reports the ioFact evidence of one resolved callee:
// network/file I/O, or a blocking primitive (Sleep, WaitGroup.Wait).
func classifyCall(fn *types.Func) (net, block bool) {
	if fn == nil {
		return false, false
	}
	pkg := funcPackagePath(fn)
	name := fn.Name()
	switch pkg {
	case "net":
		if namedReceiverType(fn) == nil {
			for _, prefix := range netPrefixNames {
				if strings.HasPrefix(name, prefix) {
					return true, false
				}
			}
			return false, false
		}
		return connMethodNames[name], false
	case "net/http":
		if named := namedReceiverType(fn); named != nil {
			recv := named.Obj().Name()
			switch {
			case recv == "Client" && (name == "Do" || name == "Get" || name == "Post" ||
				name == "PostForm" || name == "Head"):
				return true, false
			case recv == "Transport" && name == "RoundTrip":
				return true, false
			case recv == "Server" && (name == "ListenAndServe" || name == "ListenAndServeTLS" ||
				name == "Serve" || name == "ServeTLS" || name == "Shutdown"):
				return true, false
			}
			return false, false
		}
		return httpClientFuncs[name], false
	case "os":
		if named := namedReceiverType(fn); named != nil {
			if named.Obj().Name() == "File" {
				switch name {
				case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "ReadDir", "Readdir":
					return true, false
				}
			}
			return false, false
		}
		return osIOFuncs[name], false
	case "os/exec":
		switch name {
		case "Run", "Output", "CombinedOutput", "Wait", "Start":
			return true, false
		}
	case "io":
		if namedReceiverType(fn) == nil && ioCopyFuncs[name] {
			return true, false
		}
	case "time":
		if namedReceiverType(fn) == nil && name == "Sleep" {
			return false, true
		}
	case "sync":
		if receiverIs(fn, "sync", "WaitGroup") && name == "Wait" {
			return false, true
		}
		// sync.Cond.Wait requires holding the mutex — the one blocking
		// wait that is legal (and mandatory) under a lock.
	}
	return false, false
}

// buildIOFacts computes per-function ioFacts over every loaded package
// (including DepOnly dependency closure, so cross-package wrappers are
// summarized), then propagates the net bit through program-local calls
// to a fixpoint.
func (p *Program) buildIOFacts() {
	p.ioFacts = make(map[*types.Func]ioFact)
	if p.Info == nil {
		return
	}
	// calls[f] lists the resolved functions f's body calls.
	calls := make(map[*types.Func][]*types.Func)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fact := ioFact{}
				spawned := make(map[*ast.CallExpr]bool)
				inspectSameFunc(fd.Body, func(n ast.Node) bool {
					switch node := n.(type) {
					case *ast.GoStmt:
						// go f() does not block the spawner: f's I/O must
						// not become this function's fact. Spawning is
						// itself join evidence only when f is joinable,
						// which the goroleak pass judges separately.
						spawned[node.Call] = true
					case *ast.CallExpr:
						if spawned[node] {
							return true
						}
						if isBuiltinClose(p, node) {
							fact.join = true
							return true
						}
						callee := p.calleeFunc(node)
						if callee == nil {
							return true
						}
						net, block := classifyCall(callee)
						fact.net = fact.net || net
						fact.block = fact.block || block
						if block || isWaitGroupMethod(callee) || isContextMethod(callee) {
							fact.join = true
						}
						calls[obj] = append(calls[obj], callee)
					case *ast.SendStmt:
						fact.block, fact.join = true, true
					case *ast.UnaryExpr:
						if node.Op == token.ARROW {
							fact.block, fact.join = true, true
						}
					case *ast.SelectStmt:
						fact.join = true
						if !selectHasDefault(node) {
							fact.block = true
						}
					case *ast.RangeStmt:
						if t := p.typeOf(node.X); t != nil {
							if _, isChan := t.Underlying().(*types.Chan); isChan {
								fact.block, fact.join = true, true
							}
						}
					}
					return true
				})
				p.ioFacts[obj] = fact
			}
		}
	}
	// Propagate the net bit through program-local calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			fact := p.ioFacts[fn]
			if fact.net {
				continue
			}
			for _, callee := range callees {
				if p.ioFacts[callee].net {
					fact.net = true
					p.ioFacts[fn] = fact
					changed = true
					break
				}
			}
		}
	}
}

// isBuiltinClose reports whether call is the close builtin — closing a
// channel is the canonical completion signal, so it counts as goroutine
// lifecycle (join) evidence.
func isBuiltinClose(p *Program, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return true // unresolved: syntactic match is close enough
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isWaitGroupMethod reports whether fn is any method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	return receiverIs(fn, "sync", "WaitGroup")
}

// isContextMethod reports whether fn is a method of context.Context
// (Done, Err, Deadline, Value) — evidence of a cancellation path.
func isContextMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isContextType(sig.Recv().Type())
}

// callBlockingIO classifies one call expression as seen from a lock
// region: direct stdlib I/O or blocking primitives, plus the one-level
// (block) and transitive (net) summaries of program-local callees.
// The returned description names what will block, "" when nothing does.
func (p *Program) callBlockingIO(call *ast.CallExpr) string {
	callee := p.calleeFunc(call)
	if callee == nil {
		return ""
	}
	net, block := classifyCall(callee)
	label := calleeLabel(callee)
	switch {
	case net:
		return label + " performs I/O"
	case block:
		return label + " blocks"
	}
	fact := p.ioFacts[callee]
	switch {
	case fact.net:
		return label + " performs I/O (via its callees)"
	case fact.block:
		return label + " blocks on a channel or wait"
	}
	return ""
}

// calleeLabel renders a callee for messages: pkg.Func or Type.Method.
func calleeLabel(fn *types.Func) string {
	if named := namedReceiverType(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
