package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak flags `go` statements that spawn work with no visible join or
// cancellation path: the goroutine's body (or the declared function it
// calls — a one-level summary) touches no sync.WaitGroup, performs no
// channel operation, and never consults a context.Context. Such
// goroutines cannot be waited for, cannot be told to stop, and leak
// across scheduler transactions and tests; under the race detector they
// are the classic source of "log after test ends" failures.
//
// Deliberate process-lifetime goroutines (a daemon's stdin feed) carry
// //3golvet:allow goroleak with a reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flags go statements with no join or cancellation path (no WaitGroup, channel, or context)",
	Run:  runGoroLeak,
}

func runGoroLeak(f *File, report Reporter) {
	prog := f.Pkg.Prog
	if prog.Info == nil {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtJoinable(prog, gs) {
			return true
		}
		report(gs.Pos(),
			"go statement has no join or cancellation path: add a WaitGroup, a result channel, a ctx-done select, or a bounded semaphore")
		return true
	})
}

// goStmtJoinable reports whether the spawned function shows lifecycle
// evidence: its body (for literals) or its declaration's summary (for
// named functions and methods) uses a WaitGroup, a channel, or a
// context — or an argument hands it a channel/context to live on.
func goStmtJoinable(prog *Program, gs *ast.GoStmt) bool {
	// Arguments that carry a channel or context into the goroutine count
	// as a lifecycle path (worker(ctx, jobs) patterns).
	for _, arg := range gs.Call.Args {
		if t := prog.typeOf(arg); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan || isContextType(t) {
				return true
			}
		}
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return funcBodyJoinable(prog, fun.Body)
	default:
		if fn := prog.calleeFunc(gs.Call); fn != nil {
			return prog.ioFacts[fn].join
		}
	}
	return false
}

// funcBodyJoinable inspects a function literal's body for lifecycle
// evidence, following one level of declared-function calls.
func funcBodyJoinable(prog *Program, body *ast.BlockStmt) bool {
	joinable := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joinable {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			joinable = true
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				joinable = true
			}
		case *ast.RangeStmt:
			if t := prog.typeOf(node.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joinable = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinClose(prog, node) {
				joinable = true // close(done) is the canonical completion signal
			} else if fn := prog.calleeFunc(node); fn != nil {
				if isWaitGroupMethod(fn) || isContextMethod(fn) || prog.ioFacts[fn].join {
					joinable = true
				}
			}
		case *ast.Ident:
			if obj := prog.Info.Uses[node]; obj != nil && isContextType(obj.Type()) {
				joinable = true
			}
		}
		return true
	})
	return joinable
}
