package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Position: token.Position{Filename: file, Line: line},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineRoundTrip pins the happy path: freeze findings, write,
// reload, and the same findings are all tolerated.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		diag("a.go", 10, "lockio", "net.Dial performs I/O while mu is locked"),
		diag("a.go", 20, "ctxprop", "exported F performs I/O but takes no context"),
		diag("b.go", 5, "goroleak", "go statement has no join path"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(diags).Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, baselined, stale := b.Apply(diags)
	if len(fresh) != 0 || len(baselined) != 3 || len(stale) != 0 {
		t.Fatalf("Apply = %d fresh, %d baselined, %d stale; want 0/3/0",
			len(fresh), len(baselined), len(stale))
	}
}

// TestBaselineGrowthRejected: a finding absent from the baseline comes
// back fresh — the ratchet fails the run.
func TestBaselineGrowthRejected(t *testing.T) {
	frozen := []Diagnostic{diag("a.go", 10, "lockio", "old debt")}
	b := NewBaseline(frozen)
	grown := append(frozen, diag("c.go", 7, "maporder", "new offence"))
	fresh, baselined, stale := b.Apply(grown)
	if len(fresh) != 1 || fresh[0].Analyzer != "maporder" {
		t.Fatalf("fresh = %v, want the single new maporder finding", fresh)
	}
	if len(baselined) != 1 || len(stale) != 0 {
		t.Fatalf("baselined=%d stale=%d, want 1/0", len(baselined), len(stale))
	}
}

// TestBaselineShrinkAccepted: fixing frozen debt leaves a stale entry
// and zero fresh findings — the run stays green and the baseline can be
// rewritten smaller.
func TestBaselineShrinkAccepted(t *testing.T) {
	frozen := []Diagnostic{
		diag("a.go", 10, "lockio", "old debt"),
		diag("b.go", 3, "ctxprop", "fixed debt"),
	}
	b := NewBaseline(frozen)
	fresh, baselined, stale := b.Apply(frozen[:1])
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none after a shrink", fresh)
	}
	if len(baselined) != 1 {
		t.Fatalf("baselined = %d, want 1", len(baselined))
	}
	if len(stale) != 1 || stale[0].Analyzer != "ctxprop" || stale[0].Count != 1 {
		t.Fatalf("stale = %v, want the fixed ctxprop entry with count 1", stale)
	}
}

// TestBaselineMultiset: line numbers do not participate, so identical
// findings are counted — an entry with count 2 absorbs exactly two.
func TestBaselineMultiset(t *testing.T) {
	two := []Diagnostic{
		diag("a.go", 10, "lockio", "same message"),
		diag("a.go", 30, "lockio", "same message"),
	}
	b := NewBaseline(two)
	if len(b.Entries) != 1 || b.Entries[0].Count != 2 {
		t.Fatalf("entries = %v, want one entry with count 2", b.Entries)
	}
	three := append(two, diag("a.go", 50, "lockio", "same message"))
	fresh, baselined, _ := b.Apply(three)
	if len(baselined) != 2 || len(fresh) != 1 {
		t.Fatalf("baselined=%d fresh=%d, want 2/1", len(baselined), len(fresh))
	}
	// Shifting lines must not break the match.
	moved := []Diagnostic{
		diag("a.go", 11, "lockio", "same message"),
		diag("a.go", 31, "lockio", "same message"),
	}
	fresh, baselined, stale := b.Apply(moved)
	if len(fresh) != 0 || len(baselined) != 2 || len(stale) != 0 {
		t.Fatalf("after line shift: %d fresh, %d baselined, %d stale; want 0/2/0",
			len(fresh), len(baselined), len(stale))
	}
}

// TestLoadBaselineMissing: no file means an empty baseline, not an
// error — first adoption needs no bootstrap step.
func TestLoadBaselineMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, _ := b.Apply([]Diagnostic{diag("a.go", 1, "lockio", "x")})
	if len(fresh) != 1 {
		t.Fatalf("fresh = %d, want 1 (everything is new against an empty baseline)", len(fresh))
	}
}
