// Package permit implements the 3GOL backend of the network-integrated
// deployment (§2.4): devices ask permission to onload; the backend
// consults the cellular monitoring system and grants a time-limited
// permit only while utilisation in the device's cell is below the
// acceptance threshold. Devices cache the permit and stop advertising
// themselves on the LAN the moment it lapses.
package permit

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"threegol/internal/clock"
	"threegol/internal/obs"
	"threegol/internal/obs/eventlog"
)

// DefaultTTL is how long a granted permit stays valid ("a permit is
// cached for a certain duration (few minutes)"); tests override it.
const DefaultTTL = 3 * time.Minute

// DefaultThreshold is the default utilisation acceptance threshold.
const DefaultThreshold = 0.7

// Backend is the operator-side permit server. It is an http.Handler
// exposing GET /permit?device=<id>&cell=<id>.
type Backend struct {
	// Utilization reports current utilisation (0..1) of a cell — the
	// interface to the 3G network monitoring system. Required. It is
	// called from HTTP handler goroutines and must be safe for
	// concurrent use (sample into an atomic snapshot rather than
	// reaching into single-threaded state).
	Utilization func(cellID string) float64
	// Threshold is the acceptance threshold; 0 selects DefaultThreshold.
	Threshold float64
	// TTL is the permit lifetime; 0 selects DefaultTTL.
	TTL time.Duration
	// Metrics, when non-nil, receives decision instrumentation (see
	// NewMetrics).
	Metrics *Metrics
	// Events, when non-nil, records a flight-recorder point per permit
	// decision, parented to the caller's X-3gol-Trace header when
	// present — stitching backend decisions into device-side traces.
	Events *eventlog.Log
	// Tracer, when non-nil, times each decision into the obs span ring
	// (surfaced at /debug/spans).
	Tracer *obs.Tracer
	// Clock times decisions for Metrics; nil selects the system clock.
	Clock clock.Clock
	// OnGrant, when non-nil, fires after each granted decision with the
	// cell ID — the hook the permit plane's admission loop uses to feed
	// granted load back into the cell-utilisation model. It is called
	// from handler goroutines and must be safe for concurrent use.
	OnGrant func(cellID string)
	// Tags are extra attribute pairs appended to every decision's
	// flight-recorder point (e.g. "shard", "3" in the sharded plane).
	Tags []string

	grants  atomic.Int64
	denials atomic.Int64
}

// Response is the backend's JSON reply.
type Response struct {
	Granted    bool    `json:"granted"`
	TTLSeconds float64 `json:"ttl_seconds"`
	// Utilization echoes the observed cell utilisation (diagnostics).
	Utilization float64 `json:"utilization"`
}

func (b *Backend) threshold() float64 {
	if b.Threshold <= 0 {
		return DefaultThreshold
	}
	return b.Threshold
}

func (b *Backend) ttl() time.Duration {
	if b.TTL <= 0 {
		return DefaultTTL
	}
	return b.TTL
}

// ServeHTTP implements http.Handler.
func (b *Backend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/permit" {
		http.NotFound(w, r)
		return
	}
	if b.Utilization == nil {
		http.Error(w, "backend misconfigured: no monitoring hook", http.StatusInternalServerError)
		return
	}
	cell := r.URL.Query().Get("cell")
	if cell == "" {
		http.Error(w, "missing cell parameter", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if tc, ok := eventlog.ExtractHTTP(r.Header); ok {
		ctx = eventlog.NewContext(ctx, tc)
	}
	resp := b.Decide(ctx, cell)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp) // client disconnect; nothing to do
}

// Decide makes one admission decision for a cell: granted while the
// monitoring hook reports utilisation below the threshold, denied
// otherwise. It is the transport-independent core of ServeHTTP — the
// sharded permit plane's batch RPC calls it directly, once per request
// in the batch. The flight-recorder point joins the TraceContext riding
// ctx (HTTP callers extract the X-3gol-Trace header into it first).
func (b *Backend) Decide(ctx context.Context, cell string) Response {
	clk := clock.Or(b.Clock)
	t0 := clk.Now()
	defer b.Tracer.Start("permit.decision").End()
	util := b.Utilization(cell)
	resp := Response{Utilization: util}
	if util < b.threshold() {
		resp.Granted = true
		resp.TTLSeconds = b.ttl().Seconds()
	}
	b.count(resp.Granted)
	if resp.Granted && b.OnGrant != nil {
		b.OnGrant(cell)
	}
	b.Metrics.decided(resp.Granted, clk.Since(t0).Seconds())
	tc, _ := eventlog.FromContext(ctx)
	attrs := []string{"cell", cell, "granted", fmt.Sprintf("%t", resp.Granted),
		"utilization", eventlog.Float(util)}
	attrs = append(attrs, b.Tags...)
	b.Events.Point(tc, "permit.decision", attrs...)
	return resp
}

// count tallies one decision. Atomic, not mutex-guarded: the decision
// path is the backend's hot loop and needs no lock at all.
func (b *Backend) count(granted bool) {
	if granted {
		b.grants.Add(1)
	} else {
		b.denials.Add(1)
	}
}

// Stats reports how many requests were granted and denied.
func (b *Backend) Stats() (grants, denials int64) {
	return b.grants.Load(), b.denials.Load()
}

// Client is the device-side permit cache. Allowed consults the cache and
// refreshes from the backend when the permit has lapsed; it degrades to
// "not allowed" when the backend is unreachable (fail-safe: no permit, no
// onloading).
type Client struct {
	// BackendURL is the backend's base URL (scheme://host:port).
	BackendURL string
	// Device and Cell identify this device and its serving cell.
	Device, Cell string
	// HTTPClient issues the permit requests; nil uses a short-timeout
	// default (the permit check sits on the request path).
	HTTPClient *http.Client
	// RequestTimeout bounds each individual backend request (applied as
	// a per-attempt context deadline, independent of any HTTPClient
	// timeout); 0 selects 2 seconds. A transient failure — connection
	// error or 5xx — is retried exactly once within the caller's
	// context, so a flaky backend costs at most one extra round-trip
	// and a dead one still fails fast.
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives refresh instrumentation (see
	// NewMetrics).
	Metrics *Metrics
	// Events, when non-nil, records a flight-recorder point per backend
	// refresh, joining the TraceContext riding the caller's context.
	Events *eventlog.Log

	mu      sync.Mutex
	granted bool
	expires time.Time
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 2 * time.Second}
}

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 2 * time.Second
}

// Allowed reports whether the device currently holds a valid permit,
// refreshing from the backend as needed. It is safe for concurrent use
// and matches the proxy.Server Admit hook shape. The context rides into
// the backend refresh, so a refresh made on behalf of a traced proxy
// request propagates that trace (and its cancellation) to the permit
// server — there is deliberately no context-free variant.
func (c *Client) Allowed(ctx context.Context) bool {
	if ok, fresh := c.cached(); fresh {
		return ok
	}

	resp, err := c.fetch(ctx)
	now := time.Now() //3golvet:allow wallclock — permit TTLs are wall-clock by protocol
	c.Metrics.refreshed(err == nil && resp.Granted, err)
	tc, _ := eventlog.FromContext(ctx)
	granted := err == nil && resp.Granted
	c.Events.Point(tc, "permit.refresh",
		"cell", c.Cell, "granted", fmt.Sprintf("%t", granted),
		"ok", fmt.Sprintf("%t", err == nil))
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Back off briefly on backend failure so a dead backend does not
		// turn every request into a permit round-trip.
		c.granted = false
		c.expires = now.Add(2 * time.Second)
		return false
	}
	c.granted = resp.Granted
	ttl := time.Duration(resp.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		// Denials are re-checked after a short cool-down ("the
		// transmission is denied, and the device does not advertise").
		ttl = 5 * time.Second
	}
	c.expires = now.Add(ttl)
	return c.granted
}

// cached returns the granted decision while the permit is still fresh.
func (c *Client) cached() (ok, fresh bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Now().Before(c.expires) { //3golvet:allow wallclock — permit TTLs are wall-clock by protocol
		return c.granted, true
	}
	return false, false
}

// Invalidate drops the cached permit, forcing a refresh on next use.
func (c *Client) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expires = time.Time{}
}

// fetch performs one backend refresh, retrying exactly once when the
// first attempt fails transiently (connection error or 5xx) and the
// caller's context is still alive.
func (c *Client) fetch(ctx context.Context) (*Response, error) {
	resp, transient, err := c.fetchOnce(ctx)
	if err != nil && transient && ctx.Err() == nil {
		c.Metrics.retriedRefresh()
		resp, _, err = c.fetchOnce(ctx)
	}
	return resp, err
}

// fetchOnce issues a single permit request under the per-attempt
// timeout. transient classifies the failure: connection-level errors
// and 5xx responses are worth one retry; 4xx and malformed bodies are
// not.
func (c *Client) fetchOnce(ctx context.Context) (resp *Response, transient bool, err error) {
	rctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	url := fmt.Sprintf("%s/permit?device=%s&cell=%s", c.BackendURL, c.Device, c.Cell)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, fmt.Errorf("permit: building request for %s: %w", url, err)
	}
	if tc, ok := eventlog.FromContext(ctx); ok {
		eventlog.InjectHTTP(req.Header, tc)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		// Connection refused, reset, or timeout: all transient.
		return nil, true, fmt.Errorf("permit: requesting %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, httpResp.StatusCode >= 500,
			fmt.Errorf("permit: backend returned %s", httpResp.Status)
	}
	var out Response
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		return nil, false, fmt.Errorf("permit: decoding response: %w", err)
	}
	return &out, false, nil
}
