package permit

import "threegol/internal/obs"

// Decision and refresh-result labels as recorded in Metrics.
const (
	decisionGranted = "granted"
	decisionDenied  = "denied"

	refreshGranted = "granted"
	refreshDenied  = "denied"
	refreshError   = "error" // backend unreachable or malformed reply
)

// Metrics holds the permit subsystem's instruments; register with
// NewMetrics and assign to Backend.Metrics and/or Client.Metrics (backend
// and client normally live in different processes, so sharing one Metrics
// only happens in tests and the fleet simulator). A nil Metrics disables
// instrumentation.
type Metrics struct {
	// Decisions counts backend permit decisions (granted | denied).
	Decisions *obs.Counter
	// DecisionSeconds is the backend's service time per decision,
	// dominated by the Utilization monitoring hook.
	DecisionSeconds *obs.Histogram
	// ClientRefreshes counts device-side cache refreshes by result
	// (granted | denied | error); cache hits are not counted.
	ClientRefreshes *obs.Counter
	// ClientRetries counts single-retry attempts after a transient
	// backend failure (connection error or 5xx).
	ClientRetries *obs.Counter
}

// NewMetrics registers the permit subsystem's metrics on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Decisions: r.NewCounter("permit_decisions_total",
			"Backend permit decisions, by decision (granted | denied).", "decision"),
		DecisionSeconds: r.NewHistogram("permit_decision_seconds",
			"Backend service time per permit decision.",
			0, 60, 1200),
		ClientRefreshes: r.NewCounter("permit_client_refreshes_total",
			"Device-side permit cache refreshes, by result (granted | denied | error); cache hits excluded.",
			"result"),
		ClientRetries: r.NewCounter("permit_client_retries_total",
			"Permit refresh retries after a transient backend failure (connection error or 5xx)."),
	}
}

func (m *Metrics) decided(granted bool, secs float64) {
	if m == nil {
		return
	}
	d := decisionDenied
	if granted {
		d = decisionGranted
	}
	m.Decisions.With(d).Inc()
	m.DecisionSeconds.Observe(secs)
}

func (m *Metrics) refreshed(granted bool, err error) {
	if m == nil {
		return
	}
	result := refreshDenied
	switch {
	case err != nil:
		result = refreshError
	case granted:
		result = refreshGranted
	}
	m.ClientRefreshes.With(result).Inc()
}

func (m *Metrics) retriedRefresh() {
	if m == nil {
		return
	}
	m.ClientRetries.Inc()
}
