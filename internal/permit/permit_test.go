package permit

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"threegol/internal/obs"
)

func TestBackendGrantsBelowThreshold(t *testing.T) {
	util := 0.3
	var mu sync.Mutex
	b := &Backend{
		Utilization: func(cell string) float64 {
			mu.Lock()
			defer mu.Unlock()
			return util
		},
		Threshold: 0.7,
	}
	srv := httptest.NewServer(b)
	defer srv.Close()

	c := &Client{BackendURL: srv.URL, Device: "d1", Cell: "c1"}
	if !c.Allowed(context.Background()) {
		t.Error("permit denied below threshold")
	}
	grants, denials := b.Stats()
	if grants != 1 || denials != 0 {
		t.Errorf("stats = %d/%d, want 1/0", grants, denials)
	}

	// Congest the cell; the cached permit still holds until TTL.
	mu.Lock()
	util = 0.9
	mu.Unlock()
	if !c.Allowed(context.Background()) {
		t.Error("cached permit should still be honoured")
	}
	// Force refresh: now denied.
	c.Invalidate()
	if c.Allowed(context.Background()) {
		t.Error("permit granted above threshold after refresh")
	}
}

func TestBackendDeniesAboveThreshold(t *testing.T) {
	b := &Backend{Utilization: func(string) float64 { return 0.95 }}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if c.Allowed(context.Background()) {
		t.Error("permit granted for congested cell")
	}
	if g, d := b.Stats(); g != 0 || d != 1 {
		t.Errorf("stats = %d/%d, want 0/1", g, d)
	}
}

func TestPermitExpiresAfterTTL(t *testing.T) {
	var mu sync.Mutex
	util := 0.1
	b := &Backend{
		Utilization: func(string) float64 { mu.Lock(); defer mu.Unlock(); return util },
		TTL:         50 * time.Millisecond,
	}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if !c.Allowed(context.Background()) {
		t.Fatal("initial grant failed")
	}
	mu.Lock()
	util = 0.99
	mu.Unlock()
	time.Sleep(80 * time.Millisecond) // past TTL
	if c.Allowed(context.Background()) {
		t.Error("expired permit not refreshed (should now be denied)")
	}
}

func TestClientFailsSafeOnBackendDown(t *testing.T) {
	c := &Client{BackendURL: "http://127.0.0.1:1", Device: "d", Cell: "c"}
	if c.Allowed(context.Background()) {
		t.Error("unreachable backend must deny onloading")
	}
}

func TestBackendValidation(t *testing.T) {
	b := &Backend{Utilization: func(string) float64 { return 0 }}
	srv := httptest.NewServer(b)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/permit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing cell param = %d, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}

	misconfigured := httptest.NewServer(&Backend{})
	defer misconfigured.Close()
	resp, err = misconfigured.Client().Get(misconfigured.URL + "/permit?cell=c")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("no monitoring hook = %d, want 500", resp.StatusCode)
	}
}

func TestDeniedPermitRecheckedAfterCooldown(t *testing.T) {
	var mu sync.Mutex
	util := 0.99
	calls := 0
	b := &Backend{
		Utilization: func(string) float64 { mu.Lock(); defer mu.Unlock(); calls++; return util },
	}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if c.Allowed(context.Background()) {
		t.Fatal("should be denied")
	}
	// Within the cool-down, no new backend call.
	c.Allowed(context.Background())
	mu.Lock()
	if calls != 1 {
		t.Errorf("backend called %d times within cool-down, want 1", calls)
	}
	mu.Unlock()
}

func TestClientRetriesTransient5xx(t *testing.T) {
	// First request 503, second succeeds: the client's single retry
	// must turn this into a granted permit.
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"granted":true,"ttl_seconds":60}`)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := &Client{BackendURL: srv.URL, Device: "d1", Cell: "c1", Metrics: m}
	if !c.Allowed(context.Background()) {
		t.Fatal("permit denied despite successful retry")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("backend saw %d calls; want exactly 2 (one retry)", calls)
	}
	if got := m.ClientRetries.With().Value(); got != 1 {
		t.Fatalf("retry counter = %v; want 1", got)
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// A dead backend: both attempts fail, the client degrades to "not
	// allowed" after exactly one retry, and fails fast.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here any more → connection refused

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := &Client{BackendURL: url, Device: "d1", Cell: "c1", Metrics: m,
		RequestTimeout: 200 * time.Millisecond}
	start := time.Now()
	if c.Allowed(context.Background()) {
		t.Fatal("permit granted with a dead backend")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dead-backend refresh took %v; want fast failure", d)
	}
	if got := m.ClientRetries.With().Value(); got != 1 {
		t.Fatalf("retry counter = %v; want exactly 1", got)
	}
	if got := m.ClientRefreshes.With("error").Value(); got != 1 {
		t.Fatalf("error refreshes = %v; want 1 (retry folded into one refresh)", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "who are you", http.StatusForbidden)
	}))
	defer srv.Close()

	c := &Client{BackendURL: srv.URL, Device: "d1", Cell: "c1"}
	if c.Allowed(context.Background()) {
		t.Fatal("permit granted on 403")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("backend saw %d calls; 4xx must not be retried", calls)
	}
}
