package permit

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestBackendGrantsBelowThreshold(t *testing.T) {
	util := 0.3
	var mu sync.Mutex
	b := &Backend{
		Utilization: func(cell string) float64 {
			mu.Lock()
			defer mu.Unlock()
			return util
		},
		Threshold: 0.7,
	}
	srv := httptest.NewServer(b)
	defer srv.Close()

	c := &Client{BackendURL: srv.URL, Device: "d1", Cell: "c1"}
	if !c.Allowed() {
		t.Error("permit denied below threshold")
	}
	grants, denials := b.Stats()
	if grants != 1 || denials != 0 {
		t.Errorf("stats = %d/%d, want 1/0", grants, denials)
	}

	// Congest the cell; the cached permit still holds until TTL.
	mu.Lock()
	util = 0.9
	mu.Unlock()
	if !c.Allowed() {
		t.Error("cached permit should still be honoured")
	}
	// Force refresh: now denied.
	c.Invalidate()
	if c.Allowed() {
		t.Error("permit granted above threshold after refresh")
	}
}

func TestBackendDeniesAboveThreshold(t *testing.T) {
	b := &Backend{Utilization: func(string) float64 { return 0.95 }}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if c.Allowed() {
		t.Error("permit granted for congested cell")
	}
	if g, d := b.Stats(); g != 0 || d != 1 {
		t.Errorf("stats = %d/%d, want 0/1", g, d)
	}
}

func TestPermitExpiresAfterTTL(t *testing.T) {
	var mu sync.Mutex
	util := 0.1
	b := &Backend{
		Utilization: func(string) float64 { mu.Lock(); defer mu.Unlock(); return util },
		TTL:         50 * time.Millisecond,
	}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if !c.Allowed() {
		t.Fatal("initial grant failed")
	}
	mu.Lock()
	util = 0.99
	mu.Unlock()
	time.Sleep(80 * time.Millisecond) // past TTL
	if c.Allowed() {
		t.Error("expired permit not refreshed (should now be denied)")
	}
}

func TestClientFailsSafeOnBackendDown(t *testing.T) {
	c := &Client{BackendURL: "http://127.0.0.1:1", Device: "d", Cell: "c"}
	if c.Allowed() {
		t.Error("unreachable backend must deny onloading")
	}
}

func TestBackendValidation(t *testing.T) {
	b := &Backend{Utilization: func(string) float64 { return 0 }}
	srv := httptest.NewServer(b)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/permit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing cell param = %d, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}

	misconfigured := httptest.NewServer(&Backend{})
	defer misconfigured.Close()
	resp, err = misconfigured.Client().Get(misconfigured.URL + "/permit?cell=c")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("no monitoring hook = %d, want 500", resp.StatusCode)
	}
}

func TestDeniedPermitRecheckedAfterCooldown(t *testing.T) {
	var mu sync.Mutex
	util := 0.99
	calls := 0
	b := &Backend{
		Utilization: func(string) float64 { mu.Lock(); defer mu.Unlock(); calls++; return util },
	}
	srv := httptest.NewServer(b)
	defer srv.Close()
	c := &Client{BackendURL: srv.URL, Device: "d", Cell: "c"}
	if c.Allowed() {
		t.Fatal("should be denied")
	}
	// Within the cool-down, no new backend call.
	c.Allowed()
	mu.Lock()
	if calls != 1 {
		t.Errorf("backend called %d times within cool-down, want 1", calls)
	}
	mu.Unlock()
}
